// Command dmtsim runs a single (environment × design × page-size ×
// workload) simulation and prints its measurements — the low-level
// entry point behind cmd/figures.
//
// Usage:
//
//	dmtsim -env native|virt|nested -design vanilla|shadow|dmt|pvdmt|ecpt|fpt|agile|asap|victima|utopia
//	       -workload GUPS [-thp] [-ops N] [-ws MiB] [-scale N] [-seed N] [-breakdown]
//	       [-workers N] [-shards N]
//
// -workers shards the trace across goroutines; a run's results are
// bit-identical for any worker count (they depend on -shards only, which
// defaults to the worker count — pin -shards to compare worker counts).
//
// With -scenario, dmtsim instead runs the long-horizon cloud-node aging
// scenario (internal/scenario): one node per design churned through -ops
// lifecycle events (VM boots/deaths, guest mmap/munmap, THP splits and
// collapses, compaction, TEA-migration windows) with the lifecycle
// conservation oracle armed, printing the node-age × metric table. -design
// restricts the campaign to dmt or pvdmt; -vms, -epochs, and -mem size the
// node; -no-check disables the oracle.
//
// With -faults, dmtsim instead runs the fault-injection campaign: every
// (environment × design × fault schedule) cell for the selected workload,
// with the differential oracle re-checking each translation against the
// live page tables, and prints the graceful-degradation table. The output
// is deterministic for a fixed -seed.
//
// Flag values are validated up front: nonsensical sizing (-ops 0, a
// negative -workers, ...) exits with status 2 and a one-line message
// instead of running — or silently misrunning — the simulation. SIGINT /
// SIGTERM cancel the run at its next step batch.
//
// Observability (see DESIGN.md §10):
//
//	-pprof f      write a CPU profile of the run to f
//	-trace-out f  write a runtime execution trace to f
//	-counters     dump the process-wide counter registry after the run
//	              (also published as the "dmtsim" expvar)
//	-walk-trace N capture per-walk trace events and print the last N
//	-trace-cap N  bound each shard's walk-trace ring (default 4096)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime/pprof"
	"runtime/trace"
	"syscall"

	"dmt/internal/experiments"
	"dmt/internal/obs"
	"dmt/internal/sim"
	"dmt/internal/workload"
)

// cliFlags collects every user-supplied value so validation is a pure,
// testable function rather than scattered log.Fatalf calls.
type cliFlags struct {
	envName   string
	design    string
	wlName    string
	thp       bool
	ops       int
	wsMiB     int
	scale     int
	seed      int64
	breakdown bool
	faults    bool
	quiet     bool
	workers   int
	shards    int
	pprofOut  string
	traceOut  string
	counters  bool
	walkTrace int
	traceCap  int

	scenario bool
	vms      int
	epochs   int
	memMiB   int
	noCheck  bool
}

// validateScenario checks the aging-mode flag subset. -design restricts
// the campaign to one node stack when set explicitly; the empty string
// (the caller passes "" when the flag was left at its default) runs both.
func (f cliFlags) validateScenario(design string) ([]string, error) {
	switch {
	case f.ops <= 0:
		return nil, fmt.Errorf("-ops must be positive (got %d)", f.ops)
	case f.workers < 0:
		return nil, fmt.Errorf("-workers must be >= 0 (got %d; 0 means 1)", f.workers)
	case f.shards < 0:
		return nil, fmt.Errorf("-shards must be >= 0 (got %d; 0 means the default)", f.shards)
	case f.vms < 0:
		return nil, fmt.Errorf("-vms must be >= 0 (got %d; 0 means the default)", f.vms)
	case f.epochs < 0:
		return nil, fmt.Errorf("-epochs must be >= 0 (got %d; 0 means the default)", f.epochs)
	case f.memMiB < 0:
		return nil, fmt.Errorf("-mem must be >= 0 (got %d; 0 means the default)", f.memMiB)
	}
	switch design {
	case "":
		return []string{"dmt", "pvdmt"}, nil
	case "dmt", "pvdmt":
		return []string{design}, nil
	default:
		return nil, fmt.Errorf("-scenario supports -design dmt or pvdmt (got %q)", design)
	}
}

// validate rejects nonsensical sizing and unknown names up front. It
// returns the parsed environment, design, and workload so the happy path
// never re-parses; main maps any error to exit status 2.
func (f cliFlags) validate() (sim.Environment, sim.Design, workload.Spec, error) {
	switch {
	case f.ops <= 0:
		return 0, "", workload.Spec{}, fmt.Errorf("-ops must be positive (got %d)", f.ops)
	case f.workers < 0:
		return 0, "", workload.Spec{}, fmt.Errorf("-workers must be >= 0 (got %d; 0 means 1)", f.workers)
	case f.shards < 0:
		return 0, "", workload.Spec{}, fmt.Errorf("-shards must be >= 0 (got %d; 0 means -workers)", f.shards)
	case f.wsMiB < 0:
		return 0, "", workload.Spec{}, fmt.Errorf("-ws must be >= 0 (got %d; 0 means the scaled default)", f.wsMiB)
	case f.scale < 1:
		return 0, "", workload.Spec{}, fmt.Errorf("-scale must be >= 1 (got %d)", f.scale)
	case f.walkTrace < 0:
		return 0, "", workload.Spec{}, fmt.Errorf("-walk-trace must be >= 0 (got %d)", f.walkTrace)
	case f.traceCap < 0:
		return 0, "", workload.Spec{}, fmt.Errorf("-trace-cap must be >= 0 (got %d; 0 means the default ring)", f.traceCap)
	}
	env, err := sim.ParseEnvironment(f.envName)
	if err != nil {
		return 0, "", workload.Spec{}, err
	}
	design, err := sim.ParseDesign(f.design)
	if err != nil {
		return 0, "", workload.Spec{}, err
	}
	wl, err := workload.ByName(f.wlName)
	if err != nil {
		return 0, "", workload.Spec{}, err
	}
	return env, design, wl, nil
}

// startProfiling opens the -pprof / -trace-out sinks and returns the
// stop function to defer; a zero-value pair of flags is a no-op.
func startProfiling(pprofPath, tracePath string) func() {
	var stops []func()
	if pprofPath != "" {
		f, err := os.Create(pprofPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		stops = append(stops, func() { pprof.StopCPUProfile(); f.Close() })
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.Start(f); err != nil {
			log.Fatal(err)
		}
		stops = append(stops, func() { trace.Stop(); f.Close() })
	}
	return func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}
}

func main() {
	var f cliFlags
	flag.StringVar(&f.envName, "env", "native", "environment: native, virt, nested")
	flag.StringVar(&f.design, "design", "vanilla", "translation design")
	flag.StringVar(&f.wlName, "workload", "GUPS", "benchmark name (Table 4)")
	flag.BoolVar(&f.thp, "thp", false, "enable transparent huge pages")
	flag.IntVar(&f.ops, "ops", 400_000, "trace length")
	flag.IntVar(&f.wsMiB, "ws", 0, "working set in MiB (0 = scaled default)")
	flag.IntVar(&f.scale, "scale", 16, "cache/TLB scaling divisor")
	flag.Int64Var(&f.seed, "seed", 42, "trace seed")
	flag.BoolVar(&f.breakdown, "breakdown", false, "print the per-step walk breakdown")
	flag.BoolVar(&f.faults, "faults", false, "run the fault-injection campaign and print the degradation table")
	flag.BoolVar(&f.quiet, "q", false, "suppress progress output (with -faults)")
	flag.IntVar(&f.workers, "workers", 1, "goroutines simulating trace shards (results are identical for any value)")
	flag.IntVar(&f.shards, "shards", 0, "trace shards (0 = workers); results depend on shards, not workers")
	flag.StringVar(&f.pprofOut, "pprof", "", "write a CPU profile to this file")
	flag.StringVar(&f.traceOut, "trace-out", "", "write a runtime execution trace to this file")
	flag.BoolVar(&f.counters, "counters", false, "dump the process-wide counter registry after the run")
	flag.IntVar(&f.walkTrace, "walk-trace", 0, "capture per-walk trace events and print the last N")
	flag.IntVar(&f.traceCap, "trace-cap", 0, "bound each shard's walk-trace ring (0 = default 4096)")
	flag.BoolVar(&f.scenario, "scenario", false, "run the long-horizon node-aging scenario and print the node-age table")
	flag.IntVar(&f.vms, "vms", 0, "aging: per-shard live-VM target (0 = default)")
	flag.IntVar(&f.epochs, "epochs", 0, "aging: node-age sampling points (0 = default)")
	flag.IntVar(&f.memMiB, "mem", 0, "aging: node physical memory in MiB (0 = default)")
	flag.BoolVar(&f.noCheck, "no-check", false, "aging: skip the conservation oracle")
	flag.Parse()

	if f.scenario {
		// -design defaults to "vanilla" for the single-run mode; only an
		// explicit value restricts the aging campaign.
		designArg := ""
		flag.Visit(func(fl *flag.Flag) {
			if fl.Name == "design" {
				designArg = f.design
			}
		})
		designs, err := f.validateScenario(designArg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmtsim: %v\n", err)
			os.Exit(2)
		}
		opt := experiments.AgingOptions{
			Designs: designs, Events: f.ops, VMs: f.vms, Epochs: f.epochs,
			Shards: f.shards, Workers: f.workers, MemMiB: f.memMiB,
			Seed: f.seed, THP: f.thp, Verify: !f.noCheck,
		}
		if !f.quiet {
			opt.Logf = func(format string, args ...interface{}) {
				fmt.Fprintf(os.Stderr, "# "+format+"\n", args...)
			}
		}
		out, err := experiments.AgingCampaign(opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(out)
		return
	}

	env, design, wl, err := f.validate()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmtsim: %v\n", err)
		os.Exit(2)
	}

	obs.PublishExpvar()
	defer startProfiling(f.pprofOut, f.traceOut)()
	if f.counters {
		defer func() { fmt.Print("\nprocess counters:\n" + obs.Default.Dump()) }()
	}
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if f.faults {
		campaignOps := f.ops
		opsSet := false
		flag.Visit(func(fl *flag.Flag) {
			if fl.Name == "ops" {
				opsSet = true
			}
		})
		// The campaign runs ~100 simulations; default to a shorter trace
		// than a single run unless -ops was given explicitly.
		if !opsSet {
			campaignOps = 40_000
		}
		opt := experiments.Options{
			Ops: campaignOps, WSBytes: uint64(f.wsMiB) << 20,
			CacheScale: f.scale, Seed: f.seed,
			Workloads: []workload.Spec{wl},
			Workers:   f.workers,
		}
		if !f.quiet {
			opt.Logf = func(format string, args ...interface{}) {
				fmt.Fprintf(os.Stderr, "# "+format+"\n", args...)
			}
		}
		out, err := experiments.FaultCampaignCtx(ctx, experiments.NewRunner(opt))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(out)
		return
	}
	res, err := sim.RunCtx(ctx, sim.Config{
		Env: env, Design: design, THP: f.thp, Workload: wl,
		WSBytes: uint64(f.wsMiB) << 20, Ops: f.ops, Seed: f.seed, CacheScale: f.scale,
		Workers: f.workers, Shards: f.shards,
		Trace: f.walkTrace > 0, TraceCap: f.traceCap,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("config:            %s / %s / %s (THP=%v)\n", f.envName, design, wl.Name, f.thp)
	fmt.Printf("trace ops:         %d\n", res.Ops)
	fmt.Printf("TLB miss ratio:    %.4f (%d misses)\n", res.MissRatio(), res.TLBMisses)
	fmt.Printf("avg walk latency:  %.1f cycles\n", res.AvgWalkCycles())
	if res.WalkHist != nil && res.WalkHist.Count > 0 {
		fmt.Printf("walk latency tail: p50<=%d p90<=%d p99<=%d max=%d cycles\n",
			res.WalkPercentile(50), res.WalkPercentile(90),
			res.WalkPercentile(99), res.WalkHist.Max)
	}
	fmt.Printf("avg seq refs/walk: %.2f (total refs/walk %.2f)\n",
		res.AvgSeqRefs(), float64(res.TotalRefs)/float64(max64(res.Walks, 1)))
	fmt.Printf("register coverage: %.2f%%\n", res.Coverage*100)
	fmt.Printf("data cycles:       %d\n", res.DataCycles)
	fmt.Printf("PT structures:     %.2f MiB\n", float64(res.PTEBytes)/(1<<20))
	if res.Hypercalls+res.VMExits+res.ShadowSyncs > 0 {
		fmt.Printf("hypercalls:        %d, VM exits: %d, shadow syncs: %d\n",
			res.Hypercalls, res.VMExits, res.ShadowSyncs)
	}
	if f.breakdown {
		fmt.Println("\nper-step breakdown (amortized cycles/walk, share of walk latency):")
		for _, s := range res.Breakdown() {
			fmt.Printf("  %-10s %8.2f cyc  %5.1f%%  (%d hits)\n", s.Label,
				float64(s.Cycles)/float64(res.Walks),
				100*float64(s.Cycles)/float64(max64(res.WalkCycles, 1)), s.Count)
		}
	}
	if f.walkTrace > 0 {
		events := res.Trace
		if len(events) > f.walkTrace {
			events = events[len(events)-f.walkTrace:]
		}
		fmt.Printf("\nwalk trace (last %d of %d captured, %d total):\n",
			len(events), len(res.Trace), res.TraceTotal)
		for i := range events {
			fmt.Println("  " + events[i].String())
		}
	}
}

func max64(a uint64, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
