// Command dmtsim runs a single (environment × design × page-size ×
// workload) simulation and prints its measurements — the low-level
// entry point behind cmd/figures.
//
// Usage:
//
//	dmtsim -env native|virt|nested -design vanilla|shadow|dmt|pvdmt|ecpt|fpt|agile|asap
//	       -workload GUPS [-thp] [-ops N] [-ws MiB] [-scale N] [-seed N] [-breakdown]
//	       [-workers N] [-shards N]
//
// -workers shards the trace across goroutines; a run's results are
// bit-identical for any worker count (they depend on -shards only, which
// defaults to the worker count — pin -shards to compare worker counts).
//
// With -faults, dmtsim instead runs the fault-injection campaign: every
// (environment × design × fault schedule) cell for the selected workload,
// with the differential oracle re-checking each translation against the
// live page tables, and prints the graceful-degradation table. The output
// is deterministic for a fixed -seed.
//
// Observability (see DESIGN.md §10):
//
//	-pprof f      write a CPU profile of the run to f
//	-trace-out f  write a runtime execution trace to f
//	-counters     dump the process-wide counter registry after the run
//	              (also published as the "dmtsim" expvar)
//	-walk-trace N capture per-walk trace events and print the last N
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime/pprof"
	"runtime/trace"

	"dmt/internal/experiments"
	"dmt/internal/obs"
	"dmt/internal/sim"
	"dmt/internal/workload"
)

// startProfiling opens the -pprof / -trace-out sinks and returns the
// stop function to defer; a zero-value pair of flags is a no-op.
func startProfiling(pprofPath, tracePath string) func() {
	var stops []func()
	if pprofPath != "" {
		f, err := os.Create(pprofPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		stops = append(stops, func() { pprof.StopCPUProfile(); f.Close() })
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.Start(f); err != nil {
			log.Fatal(err)
		}
		stops = append(stops, func() { trace.Stop(); f.Close() })
	}
	return func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}
}

func main() {
	var (
		envName   = flag.String("env", "native", "environment: native, virt, nested")
		design    = flag.String("design", "vanilla", "translation design")
		wlName    = flag.String("workload", "GUPS", "benchmark name (Table 4)")
		thp       = flag.Bool("thp", false, "enable transparent huge pages")
		ops       = flag.Int("ops", 400_000, "trace length")
		wsMiB     = flag.Int("ws", 0, "working set in MiB (0 = scaled default)")
		scale     = flag.Int("scale", 16, "cache/TLB scaling divisor")
		seed      = flag.Int64("seed", 42, "trace seed")
		breakdown = flag.Bool("breakdown", false, "print the per-step walk breakdown")
		faults    = flag.Bool("faults", false, "run the fault-injection campaign and print the degradation table")
		quiet     = flag.Bool("q", false, "suppress progress output (with -faults)")
		workers   = flag.Int("workers", 1, "goroutines simulating trace shards (results are identical for any value)")
		shards    = flag.Int("shards", 0, "trace shards (0 = workers); results depend on shards, not workers")
		pprofOut  = flag.String("pprof", "", "write a CPU profile to this file")
		traceOut  = flag.String("trace-out", "", "write a runtime execution trace to this file")
		counters  = flag.Bool("counters", false, "dump the process-wide counter registry after the run")
		walkTrace = flag.Int("walk-trace", 0, "capture per-walk trace events and print the last N")
	)
	flag.Parse()

	obs.PublishExpvar()
	defer startProfiling(*pprofOut, *traceOut)()
	if *counters {
		defer func() { fmt.Print("\nprocess counters:\n" + obs.Default.Dump()) }()
	}

	var env sim.Environment
	switch *envName {
	case "native":
		env = sim.EnvNative
	case "virt", "virtualized":
		env = sim.EnvVirt
	case "nested":
		env = sim.EnvNested
	default:
		log.Fatalf("unknown environment %q", *envName)
	}
	wl, err := workload.ByName(*wlName)
	if err != nil {
		log.Fatal(err)
	}
	if *faults {
		campaignOps := *ops
		opsSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "ops" {
				opsSet = true
			}
		})
		// The campaign runs ~100 simulations; default to a shorter trace
		// than a single run unless -ops was given explicitly.
		if !opsSet {
			campaignOps = 40_000
		}
		opt := experiments.Options{
			Ops: campaignOps, WSBytes: uint64(*wsMiB) << 20,
			CacheScale: *scale, Seed: *seed,
			Workloads: []workload.Spec{wl},
			Workers:   *workers,
		}
		if !*quiet {
			opt.Logf = func(format string, args ...interface{}) {
				fmt.Fprintf(os.Stderr, "# "+format+"\n", args...)
			}
		}
		out, err := experiments.FaultCampaign(experiments.NewRunner(opt))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(out)
		return
	}
	res, err := sim.Run(sim.Config{
		Env: env, Design: sim.Design(*design), THP: *thp, Workload: wl,
		WSBytes: uint64(*wsMiB) << 20, Ops: *ops, Seed: *seed, CacheScale: *scale,
		Workers: *workers, Shards: *shards,
		Trace: *walkTrace > 0,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("config:            %s / %s / %s (THP=%v)\n", *envName, *design, wl.Name, *thp)
	fmt.Printf("trace ops:         %d\n", res.Ops)
	fmt.Printf("TLB miss ratio:    %.4f (%d misses)\n", res.MissRatio(), res.TLBMisses)
	fmt.Printf("avg walk latency:  %.1f cycles\n", res.AvgWalkCycles())
	if res.WalkHist != nil && res.WalkHist.Count > 0 {
		fmt.Printf("walk latency tail: p50<=%d p90<=%d p99<=%d max=%d cycles\n",
			res.WalkPercentile(50), res.WalkPercentile(90),
			res.WalkPercentile(99), res.WalkHist.Max)
	}
	fmt.Printf("avg seq refs/walk: %.2f (total refs/walk %.2f)\n",
		res.AvgSeqRefs(), float64(res.TotalRefs)/float64(max64(res.Walks, 1)))
	fmt.Printf("register coverage: %.2f%%\n", res.Coverage*100)
	fmt.Printf("data cycles:       %d\n", res.DataCycles)
	fmt.Printf("PT structures:     %.2f MiB\n", float64(res.PTEBytes)/(1<<20))
	if res.Hypercalls+res.VMExits+res.ShadowSyncs > 0 {
		fmt.Printf("hypercalls:        %d, VM exits: %d, shadow syncs: %d\n",
			res.Hypercalls, res.VMExits, res.ShadowSyncs)
	}
	if *breakdown {
		fmt.Println("\nper-step breakdown (amortized cycles/walk, share of walk latency):")
		for _, s := range res.Breakdown() {
			fmt.Printf("  %-10s %8.2f cyc  %5.1f%%  (%d hits)\n", s.Label,
				float64(s.Cycles)/float64(res.Walks),
				100*float64(s.Cycles)/float64(max64(res.WalkCycles, 1)), s.Count)
		}
	}
	if *walkTrace > 0 {
		events := res.Trace
		if len(events) > *walkTrace {
			events = events[len(events)-*walkTrace:]
		}
		fmt.Printf("\nwalk trace (last %d of %d captured, %d total):\n",
			len(events), len(res.Trace), res.TraceTotal)
		for i := range events {
			fmt.Println("  " + events[i].String())
		}
	}
}

func max64(a uint64, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
