package main

import (
	"strings"
	"testing"
)

func TestValidateArgs(t *testing.T) {
	if err := validateArgs(nil); err != nil {
		t.Fatalf("no operands rejected: %v", err)
	}
	if err := validateArgs([]string{}); err != nil {
		t.Fatalf("empty operands rejected: %v", err)
	}
	err := validateArgs([]string{"maps.txt"})
	if err == nil {
		t.Fatal("positional operand accepted")
	}
	if !strings.Contains(err.Error(), "maps.txt") {
		t.Fatalf("error %q does not name the stray operand", err)
	}
}
