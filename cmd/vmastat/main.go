// Command vmastat reproduces the VMA-characteristics analysis of §2.3: for
// each benchmark layout (and the synthetic SPEC corpora) it reports the
// total VMA count, the number of VMAs covering 99 % of the mapped bytes,
// and the number of VMA clusters under the 2 % bubble allowance — Table 1
// and the inputs of Figure 5.
//
// Usage:
//
//	vmastat [-spec]
//
// vmastat takes no positional arguments; stray operands (a typo'd flag,
// a pasted file name) exit with status 2 instead of being silently
// ignored.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dmt/internal/kernel"
	"dmt/internal/phys"
	"dmt/internal/stats"
	"dmt/internal/workload"
)

// validateArgs rejects positional operands: every vmastat selection is a
// flag, so leftovers are always a mistake.
func validateArgs(args []string) error {
	if len(args) > 0 {
		return fmt.Errorf("unexpected arguments: %v", args)
	}
	return nil
}

func main() {
	spec := flag.Bool("spec", false, "also list every synthetic SPEC workload")
	flag.Parse()
	if err := validateArgs(flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "vmastat: %v\n", err)
		os.Exit(2)
	}

	t := &stats.Table{
		Title:  "VMA characteristics (Table 1)",
		Header: []string{"Workload", "Total", "99% Cov.", "Clusters"},
	}
	for _, s := range workload.All() {
		as, err := kernel.NewAddressSpace(phys.New(0, 1<<17), kernel.Config{})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := s.Build(as, 256<<20); err != nil {
			log.Fatal(err)
		}
		st := workload.ComputeVMAStats(workload.RegionsOf(as))
		t.Add(s.Name, st.Total, st.Cov99, st.Clusters)
	}
	fmt.Print(t.String())

	for _, year := range []int{2006, 2017} {
		corpus := workload.SpecCorpus(year)
		if *spec {
			st := &stats.Table{
				Title:  fmt.Sprintf("SPEC CPU %d synthetic layouts", year),
				Header: []string{"Workload", "Total", "99% Cov.", "Clusters"},
			}
			for _, wl := range corpus {
				v := workload.ComputeVMAStats(wl.Regions)
				st.Add(wl.Name, v.Total, v.Cov99, v.Clusters)
			}
			fmt.Println()
			fmt.Print(st.String())
		} else {
			lo, hi := 1<<30, 0
			cl, ch := 1<<30, 0
			gl, gh := 1<<30, 0
			for _, wl := range corpus {
				v := workload.ComputeVMAStats(wl.Regions)
				lo, hi = min(lo, v.Total), max(hi, v.Total)
				cl, ch = min(cl, v.Cov99), max(ch, v.Cov99)
				gl, gh = min(gl, v.Clusters), max(gh, v.Clusters)
			}
			fmt.Printf("SPEC CPU %d (%d WLs): Total %d-%d, 99%% Cov. %d-%d, Clusters %d-%d\n",
				year, len(corpus), lo, hi, cl, ch, gl, gh)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
