package main

import (
	"strings"
	"testing"
	"time"
)

func TestValidateFlags(t *testing.T) {
	good := cliFlags{queue: 64, jobWorkers: 2, maxOps: 50_000_000,
		jobTimeout: 2 * time.Minute, drainT: 30 * time.Second}
	if err := good.validate(); err != nil {
		t.Fatalf("validate() rejected the defaults: %v", err)
	}
	cases := []struct {
		name    string
		mutate  func(*cliFlags)
		wantErr string
	}{
		{"zero queue", func(f *cliFlags) { f.queue = 0 }, "-queue"},
		{"negative workers", func(f *cliFlags) { f.jobWorkers = -1 }, "-job-workers"},
		{"negative max-ops", func(f *cliFlags) { f.maxOps = -1 }, "-max-ops"},
		{"negative timeout", func(f *cliFlags) { f.jobTimeout = -time.Second }, "-job-timeout"},
		{"zero drain", func(f *cliFlags) { f.drainT = 0 }, "-drain-timeout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := good
			tc.mutate(&f)
			if err := f.validate(); err == nil {
				t.Fatalf("validate() accepted %+v", f)
			} else if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validate() error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
