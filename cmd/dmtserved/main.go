// Command dmtserved is the long-running simulation service: it accepts
// (environment × design × workload) jobs over HTTP/JSON, runs them on the
// sharded engine with request coalescing layered on the prototype cache,
// and drains gracefully on SIGTERM/SIGINT.
//
// Usage:
//
//	dmtserved [-addr :7677] [-queue 64] [-job-workers 2] [-job-timeout 2m]
//	          [-max-ops 50000000] [-drain-timeout 30s]
//
// Endpoints (see DESIGN.md §11 and the README "Serving" section):
//
//	POST /run      submit a job and wait for its result
//	GET  /livez    liveness (200 even while draining — in-flight jobs finish)
//	GET  /readyz   readiness (503 while draining; coordinators stop routing)
//	GET  /healthz  back-compat alias for /readyz
//	GET  /metrics  process-wide counters as "name value" text lines
//
// Admission control: a full queue answers 429 (with Retry-After); during a
// drain new jobs get 503 while in-flight jobs run to completion. Identical
// concurrent requests are coalesced onto one simulation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dmt/internal/obs"
	"dmt/internal/serve"
)

type cliFlags struct {
	queue      int
	jobWorkers int
	maxOps     int
	jobTimeout time.Duration
	drainT     time.Duration
}

// validate rejects nonsensical sizing up front (exit 2), mirroring dmtsim.
func (f cliFlags) validate() error {
	switch {
	case f.queue < 1:
		return fmt.Errorf("-queue must be >= 1 (got %d)", f.queue)
	case f.jobWorkers < 1:
		return fmt.Errorf("-job-workers must be >= 1 (got %d)", f.jobWorkers)
	case f.maxOps < 0:
		return fmt.Errorf("-max-ops must be >= 0 (got %d)", f.maxOps)
	case f.jobTimeout < 0:
		return fmt.Errorf("-job-timeout must be >= 0 (got %v)", f.jobTimeout)
	case f.drainT <= 0:
		return fmt.Errorf("-drain-timeout must be positive (got %v)", f.drainT)
	}
	return nil
}

func main() {
	var (
		addr       = flag.String("addr", ":7677", "listen address")
		queue      = flag.Int("queue", 64, "job queue depth (admission bound; full answers 429)")
		jobWorkers = flag.Int("job-workers", 2, "jobs executing concurrently")
		jobTimeout = flag.Duration("job-timeout", 2*time.Minute, "per-job execution deadline (0 disables)")
		maxOps     = flag.Int("max-ops", 50_000_000, "largest trace length admitted (0 disables the cap)")
		drainT     = flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain may take before jobs are cancelled")
	)
	flag.Parse()
	f := cliFlags{queue: *queue, jobWorkers: *jobWorkers, maxOps: *maxOps,
		jobTimeout: *jobTimeout, drainT: *drainT}
	if err := f.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "dmtserved: %v\n", err)
		os.Exit(2)
	}

	obs.PublishExpvar()
	timeout := *jobTimeout
	if timeout == 0 {
		timeout = -1 // serve.Config treats 0 as "use default"; negative disables
	}
	cap := *maxOps
	if cap == 0 {
		cap = -1
	}
	srv := serve.New(serve.Config{
		QueueDepth: *queue,
		Workers:    *jobWorkers,
		JobTimeout: timeout,
		MaxOps:     cap,
		Registry:   obs.Default,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("dmtserved listening on %s (queue %d, %d job workers, job timeout %v)",
		*addr, *queue, *jobWorkers, *jobTimeout)

	select {
	case err := <-errc:
		srv.Close()
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful drain: stop admitting (new jobs answer 503), let in-flight
	// work finish within the drain budget, then shut the listener and the
	// worker pool down. A second signal — NotifyContext has been released
	// by stop() below — kills the process the default way.
	stop()
	log.Printf("dmtserved draining (up to %v) ...", *drainT)
	dctx, cancel := context.WithTimeout(context.Background(), *drainT)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		log.Printf("dmtserved drain incomplete: %v (cancelling remaining jobs)", err)
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("dmtserved http shutdown: %v", err)
	}
	srv.Close()
	log.Printf("dmtserved stopped")
}
