package main

import (
	"strings"
	"testing"
)

func doc(nsScale float64, allocs float64, extra map[string]float64) *benchDoc {
	d := &benchDoc{Schema: "dmt-bench/v1", Walks: map[string]walkRecord{}}
	base := map[string]float64{
		"NativeVanilla": 700, "NativeDMT": 550, "VirtVanilla": 1500,
		"VirtPvDMT": 800, "NestedPvDMT": 1050,
	}
	for name, ns := range base {
		scale := nsScale
		if s, ok := extra[name]; ok {
			scale = s
		}
		d.Walks[name] = walkRecord{NsPerWalk: ns * scale, AllocsPerWalk: allocs}
	}
	d.Matrix.SerialSeconds = 3.0 * nsScale
	d.Matrix.Workers8Seconds = 8.5 * nsScale
	return d
}

func TestCompareIdentical(t *testing.T) {
	base := doc(1, 0, nil)
	if bad := compare(base, doc(1, 0, nil), 0.15); len(bad) != 0 {
		t.Fatalf("identical records flagged: %v", bad)
	}
}

func TestCompareUniformSlowdownIsHostSpeed(t *testing.T) {
	// A 2x-slower host shifts every time metric equally; the common-factor
	// normalization must absorb it.
	base := doc(1, 0, nil)
	if bad := compare(base, doc(2, 0, nil), 0.15); len(bad) != 0 {
		t.Fatalf("uniform 2x slowdown flagged: %v", bad)
	}
}

func TestCompareSinglePathRegression(t *testing.T) {
	// One walk path 60% slower on an otherwise identical host must stick
	// out against the common factor.
	base := doc(1, 0, nil)
	bad := compare(base, doc(1, 0, map[string]float64{"NativeDMT": 1.6}), 0.15)
	if len(bad) != 1 || !strings.Contains(bad[0], "NativeDMT") {
		t.Fatalf("want one NativeDMT violation, got %v", bad)
	}
}

func TestCompareAllocRegressionIsStrict(t *testing.T) {
	// Allocations are machine-independent: any growth past rounding fails
	// even on a much faster host.
	base := doc(1, 0, nil)
	bad := compare(base, doc(0.5, 1, nil), 0.15)
	if len(bad) != len(base.Walks) {
		t.Fatalf("want %d alloc violations, got %v", len(base.Walks), bad)
	}
	for _, v := range bad {
		if !strings.Contains(v, "allocs/walk") {
			t.Fatalf("unexpected violation %q", v)
		}
	}
}

func TestCompareMissingWalk(t *testing.T) {
	base := doc(1, 0, nil)
	cur := doc(1, 0, nil)
	delete(cur.Walks, "VirtPvDMT")
	bad := compare(base, cur, 0.15)
	if len(bad) != 1 || !strings.Contains(bad[0], "missing") {
		t.Fatalf("want one missing-walk violation, got %v", bad)
	}
}

func TestCompareMatrixRegression(t *testing.T) {
	base := doc(1, 0, nil)
	cur := doc(1, 0, nil)
	cur.Matrix.SerialSeconds *= 1.5
	bad := compare(base, cur, 0.15)
	if len(bad) != 1 || !strings.Contains(bad[0], "matrix serial") {
		t.Fatalf("want one matrix violation, got %v", bad)
	}
}
