package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func doc(nsScale float64, allocs float64, extra map[string]float64) *benchDoc {
	d := &benchDoc{Schema: "dmt-bench/v3", Walks: map[string]walkRecord{}}
	base := map[string]float64{
		"NativeVanilla": 700, "NativeDMT": 550, "VirtVanilla": 1500,
		"VirtPvDMT": 800, "NestedPvDMT": 1050,
	}
	for name, ns := range base {
		scale := nsScale
		if s, ok := extra[name]; ok {
			scale = s
		}
		// Quantiles are simulated cycle counts: identical across hosts, so
		// they deliberately do NOT scale with nsScale.
		d.Walks[name] = walkRecord{
			NsPerWalk: ns * scale, AllocsPerWalk: allocs,
			P50WalkCycles: ns / 4, P90WalkCycles: ns / 2,
			P99WalkCycles: ns, MaxWalkCycles: 2 * ns,
		}
	}
	d.Matrix.SerialSeconds = 3.0 * nsScale
	d.Matrix.Workers8Seconds = 1.1 * nsScale
	d.Matrix.NumCPU = 8
	d.Build.Envs = map[string]buildRecord{}
	for name, buildNs := range map[string]float64{"native": 1.5e8, "virt": 4e8, "nested": 6e8} {
		b := buildNs * nsScale
		c := buildNs * 0.01 * nsScale // clones ~100x cheaper than builds
		d.Build.Envs[name] = buildRecord{BuildNs: b, CloneNs: c, CloneVsBuildRatio: c / b}
	}
	d.Build.MatrixBuildShare = 0.1
	return d
}

// mustCompare runs compare and fails the test on a degenerate-record error —
// the helper for the many tests that only inspect violations.
func mustCompare(t *testing.T, base, cur *benchDoc, tol float64) []string {
	t.Helper()
	bad, err := compare(base, cur, tol)
	if err != nil {
		t.Fatalf("compare: %v", err)
	}
	return bad
}

func TestCompareIdentical(t *testing.T) {
	base := doc(1, 0, nil)
	if bad := mustCompare(t, base, doc(1, 0, nil), 0.15); len(bad) != 0 {
		t.Fatalf("identical records flagged: %v", bad)
	}
}

func TestCompareUniformSlowdownIsHostSpeed(t *testing.T) {
	// A 2x-slower host shifts every time metric equally; the common-factor
	// normalization must absorb it.
	base := doc(1, 0, nil)
	if bad := mustCompare(t, base, doc(2, 0, nil), 0.15); len(bad) != 0 {
		t.Fatalf("uniform 2x slowdown flagged: %v", bad)
	}
}

func TestCompareSinglePathRegression(t *testing.T) {
	// One walk path 60% slower on an otherwise identical host must stick
	// out against the common factor.
	base := doc(1, 0, nil)
	bad := mustCompare(t, base, doc(1, 0, map[string]float64{"NativeDMT": 1.6}), 0.15)
	if len(bad) != 1 || !strings.Contains(bad[0], "NativeDMT") {
		t.Fatalf("want one NativeDMT violation, got %v", bad)
	}
}

func TestCompareAllocRegressionIsStrict(t *testing.T) {
	// Allocations are machine-independent: any growth past rounding fails
	// even on a much faster host.
	base := doc(1, 0, nil)
	bad := mustCompare(t, base, doc(0.5, 1, nil), 0.15)
	if len(bad) != len(base.Walks) {
		t.Fatalf("want %d alloc violations, got %v", len(base.Walks), bad)
	}
	for _, v := range bad {
		if !strings.Contains(v, "allocs/walk") {
			t.Fatalf("unexpected violation %q", v)
		}
	}
}

func TestCompareMissingWalk(t *testing.T) {
	base := doc(1, 0, nil)
	cur := doc(1, 0, nil)
	delete(cur.Walks, "VirtPvDMT")
	bad := mustCompare(t, base, cur, 0.15)
	if len(bad) != 1 || !strings.Contains(bad[0], "missing") {
		t.Fatalf("want one missing-walk violation, got %v", bad)
	}
}

func TestCompareMatrixRegression(t *testing.T) {
	base := doc(1, 0, nil)
	cur := doc(1, 0, nil)
	cur.Matrix.SerialSeconds *= 1.5
	bad := mustCompare(t, base, cur, 0.15)
	if len(bad) != 1 || !strings.Contains(bad[0], "matrix serial") {
		t.Fatalf("want one matrix violation, got %v", bad)
	}
}

func TestCompareWorkers8Regression(t *testing.T) {
	// With both records from multi-core hosts, the workers8 wall clock is a
	// real parallel-speed signal and a 60% regression must be flagged.
	base := doc(1, 0, nil)
	cur := doc(1, 0, nil)
	cur.Matrix.Workers8Seconds *= 1.6
	bad := mustCompare(t, base, cur, 0.15)
	if len(bad) != 1 || !strings.Contains(bad[0], "workers8") {
		t.Fatalf("want one workers8 violation, got %v", bad)
	}
}

func TestCompareWorkers8SkippedOnSingleCPU(t *testing.T) {
	// On a 1-CPU host the eight workers oversubscribe the core, so the
	// workers8 figure is scheduling noise: whichever side reports numcpu==1
	// (or predates the field, carrying 0) disables the comparison entirely,
	// no matter how wild the number.
	for _, ncpu := range []int{0, 1} {
		base := doc(1, 0, nil)
		cur := doc(1, 0, nil)
		cur.Matrix.NumCPU = ncpu
		cur.Matrix.Workers8Seconds *= 10
		if bad := mustCompare(t, base, cur, 0.15); len(bad) != 0 {
			t.Fatalf("numcpu=%d current: workers8 noise flagged: %v", ncpu, bad)
		}
		base.Matrix.NumCPU = ncpu
		base.Matrix.Workers8Seconds /= 10
		if bad := mustCompare(t, base, doc(1, 0, nil), 0.15); len(bad) != 0 {
			t.Fatalf("numcpu=%d baseline: workers8 noise flagged: %v", ncpu, bad)
		}
	}
}

func TestCompareBuildRegression(t *testing.T) {
	// One environment's cold build 60% slower on an otherwise identical
	// host must stick out of the normalized time pool like a walk path.
	base := doc(1, 0, nil)
	cur := doc(1, 0, nil)
	r := cur.Build.Envs["virt"]
	r.BuildNs *= 1.6
	r.CloneVsBuildRatio = r.CloneNs / r.BuildNs
	cur.Build.Envs["virt"] = r
	bad := mustCompare(t, base, cur, 0.15)
	if len(bad) != 1 || !strings.Contains(bad[0], "build virt ns") {
		t.Fatalf("want one virt build-ns violation, got %v", bad)
	}
}

func TestCompareCloneRatioRegressionIsHostIndependent(t *testing.T) {
	// Clones drifting toward build cost must be flagged even on a uniformly
	// 2x-slower host: the ratio is measured within one machine, so the
	// host-speed normalization never excuses it.
	base := doc(1, 0, nil)
	cur := doc(2, 0, nil)
	r := cur.Build.Envs["native"]
	r.CloneNs *= 3
	r.CloneVsBuildRatio = r.CloneNs / r.BuildNs
	cur.Build.Envs["native"] = r
	bad := mustCompare(t, base, cur, 0.15)
	found := false
	for _, v := range bad {
		if strings.Contains(v, "clone/build ratio") && strings.Contains(v, "native") {
			found = true
		}
	}
	if !found {
		t.Fatalf("want a native clone/build ratio violation, got %v", bad)
	}
}

func TestCompareMissingBuildEnv(t *testing.T) {
	base := doc(1, 0, nil)
	cur := doc(1, 0, nil)
	delete(cur.Build.Envs, "nested")
	bad := mustCompare(t, base, cur, 0.15)
	if len(bad) != 1 || !strings.Contains(bad[0], "build nested: missing") {
		t.Fatalf("want one missing-build violation, got %v", bad)
	}
}

func TestCompareV1BaselineSkipsBuild(t *testing.T) {
	// A pre-snapshot (v1) baseline carries no build section; the gate must
	// still run the walk/matrix comparison without inventing violations.
	base := doc(1, 0, nil)
	base.Schema = "dmt-bench/v1"
	base.Build.Envs = nil
	for name, w := range base.Walks {
		w.P50WalkCycles, w.P90WalkCycles, w.P99WalkCycles, w.MaxWalkCycles = 0, 0, 0, 0
		base.Walks[name] = w
	}
	if bad := mustCompare(t, base, doc(1, 0, nil), 0.15); len(bad) != 0 {
		t.Fatalf("v1 baseline flagged: %v", bad)
	}
}

func TestCompareQuantileRegressionIsHostIndependent(t *testing.T) {
	// Simulated p99 cycles doubling must be flagged even when the current
	// record came from a uniformly 2x-slower host: the quantiles are
	// deterministic cycle counts, so the host factor never excuses them.
	base := doc(1, 0, nil)
	cur := doc(2, 0, nil)
	w := cur.Walks["VirtPvDMT"]
	w.P99WalkCycles *= 2
	cur.Walks["VirtPvDMT"] = w
	bad := mustCompare(t, base, cur, 0.15)
	if len(bad) != 1 || !strings.Contains(bad[0], "VirtPvDMT") || !strings.Contains(bad[0], "p99 cycles") {
		t.Fatalf("want one VirtPvDMT p99 violation, got %v", bad)
	}
}

func TestCompareQuantileSkippedForPreV3Baseline(t *testing.T) {
	// A v2 baseline has zero quantile fields; the current record growing
	// real quantiles must not be compared against those zeros.
	base := doc(1, 0, nil)
	base.Schema = "dmt-bench/v2"
	for name, w := range base.Walks {
		w.P50WalkCycles, w.P90WalkCycles, w.P99WalkCycles, w.MaxWalkCycles = 0, 0, 0, 0
		base.Walks[name] = w
	}
	if bad := mustCompare(t, base, doc(1, 0, nil), 0.15); len(bad) != 0 {
		t.Fatalf("v2 baseline flagged on quantiles: %v", bad)
	}
}

func TestCompareEmptyWalksIsError(t *testing.T) {
	// The empty-pool guard: a record with no walks must be a hard error
	// naming the starved section, never a vacuous pass.
	empty := doc(1, 0, nil)
	empty.Walks = nil
	if _, err := compare(empty, doc(1, 0, nil), 0.15); err == nil || !strings.Contains(err.Error(), "baseline walks") {
		t.Fatalf("empty baseline walks: err = %v, want named-section error", err)
	}
	if _, err := compare(doc(1, 0, nil), empty, 0.15); err == nil || !strings.Contains(err.Error(), "current walks") {
		t.Fatalf("empty current walks: err = %v, want named-section error", err)
	}
}

func TestCompareStarvedTimePoolIsError(t *testing.T) {
	// Records whose shared time metrics are all zeroed leave nothing to
	// estimate the host-speed factor from; the gate must refuse rather
	// than let stats.GeoMean's empty-input zero flow into the comparison.
	zeroTimes := func() *benchDoc {
		d := doc(1, 0, nil)
		for name, w := range d.Walks {
			w.NsPerWalk = 0
			d.Walks[name] = w
		}
		d.Matrix.SerialSeconds = 0
		d.Build.Envs = nil
		return d
	}
	_, err := compare(zeroTimes(), zeroTimes(), 0.15)
	if err == nil || !strings.Contains(err.Error(), "time pool") {
		t.Fatalf("starved time pool: err = %v, want time-pool error", err)
	}
}

func TestLoadSchemaVersions(t *testing.T) {
	dir := t.TempDir()
	write := func(schema string) string {
		p := filepath.Join(dir, strings.ReplaceAll(schema, "/", "_")+".json")
		if err := os.WriteFile(p, []byte(`{"schema":"`+schema+`"}`), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	for _, ok := range []string{"dmt-bench/v1", "dmt-bench/v2", "dmt-bench/v3"} {
		if _, err := load(write(ok)); err != nil {
			t.Errorf("schema %s rejected: %v", ok, err)
		}
	}
	for _, bad := range []string{"dmt-bench/v4", ""} {
		if _, err := load(write(bad)); err == nil {
			t.Errorf("schema %q accepted, want error", bad)
		}
	}
}
