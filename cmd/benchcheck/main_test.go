package main

import (
	"strings"
	"testing"
)

func doc(nsScale float64, allocs float64, extra map[string]float64) *benchDoc {
	d := &benchDoc{Schema: "dmt-bench/v2", Walks: map[string]walkRecord{}}
	base := map[string]float64{
		"NativeVanilla": 700, "NativeDMT": 550, "VirtVanilla": 1500,
		"VirtPvDMT": 800, "NestedPvDMT": 1050,
	}
	for name, ns := range base {
		scale := nsScale
		if s, ok := extra[name]; ok {
			scale = s
		}
		d.Walks[name] = walkRecord{NsPerWalk: ns * scale, AllocsPerWalk: allocs}
	}
	d.Matrix.SerialSeconds = 3.0 * nsScale
	d.Matrix.Workers8Seconds = 8.5 * nsScale
	d.Build.Envs = map[string]buildRecord{}
	for name, buildNs := range map[string]float64{"native": 1.5e8, "virt": 4e8, "nested": 6e8} {
		b := buildNs * nsScale
		c := buildNs * 0.01 * nsScale // clones ~100x cheaper than builds
		d.Build.Envs[name] = buildRecord{BuildNs: b, CloneNs: c, CloneVsBuildRatio: c / b}
	}
	d.Build.MatrixBuildShare = 0.1
	return d
}

func TestCompareIdentical(t *testing.T) {
	base := doc(1, 0, nil)
	if bad := compare(base, doc(1, 0, nil), 0.15); len(bad) != 0 {
		t.Fatalf("identical records flagged: %v", bad)
	}
}

func TestCompareUniformSlowdownIsHostSpeed(t *testing.T) {
	// A 2x-slower host shifts every time metric equally; the common-factor
	// normalization must absorb it.
	base := doc(1, 0, nil)
	if bad := compare(base, doc(2, 0, nil), 0.15); len(bad) != 0 {
		t.Fatalf("uniform 2x slowdown flagged: %v", bad)
	}
}

func TestCompareSinglePathRegression(t *testing.T) {
	// One walk path 60% slower on an otherwise identical host must stick
	// out against the common factor.
	base := doc(1, 0, nil)
	bad := compare(base, doc(1, 0, map[string]float64{"NativeDMT": 1.6}), 0.15)
	if len(bad) != 1 || !strings.Contains(bad[0], "NativeDMT") {
		t.Fatalf("want one NativeDMT violation, got %v", bad)
	}
}

func TestCompareAllocRegressionIsStrict(t *testing.T) {
	// Allocations are machine-independent: any growth past rounding fails
	// even on a much faster host.
	base := doc(1, 0, nil)
	bad := compare(base, doc(0.5, 1, nil), 0.15)
	if len(bad) != len(base.Walks) {
		t.Fatalf("want %d alloc violations, got %v", len(base.Walks), bad)
	}
	for _, v := range bad {
		if !strings.Contains(v, "allocs/walk") {
			t.Fatalf("unexpected violation %q", v)
		}
	}
}

func TestCompareMissingWalk(t *testing.T) {
	base := doc(1, 0, nil)
	cur := doc(1, 0, nil)
	delete(cur.Walks, "VirtPvDMT")
	bad := compare(base, cur, 0.15)
	if len(bad) != 1 || !strings.Contains(bad[0], "missing") {
		t.Fatalf("want one missing-walk violation, got %v", bad)
	}
}

func TestCompareMatrixRegression(t *testing.T) {
	base := doc(1, 0, nil)
	cur := doc(1, 0, nil)
	cur.Matrix.SerialSeconds *= 1.5
	bad := compare(base, cur, 0.15)
	if len(bad) != 1 || !strings.Contains(bad[0], "matrix serial") {
		t.Fatalf("want one matrix violation, got %v", bad)
	}
}

func TestCompareBuildRegression(t *testing.T) {
	// One environment's cold build 60% slower on an otherwise identical
	// host must stick out of the normalized time pool like a walk path.
	base := doc(1, 0, nil)
	cur := doc(1, 0, nil)
	r := cur.Build.Envs["virt"]
	r.BuildNs *= 1.6
	r.CloneVsBuildRatio = r.CloneNs / r.BuildNs
	cur.Build.Envs["virt"] = r
	bad := compare(base, cur, 0.15)
	if len(bad) != 1 || !strings.Contains(bad[0], "build virt ns") {
		t.Fatalf("want one virt build-ns violation, got %v", bad)
	}
}

func TestCompareCloneRatioRegressionIsHostIndependent(t *testing.T) {
	// Clones drifting toward build cost must be flagged even on a uniformly
	// 2x-slower host: the ratio is measured within one machine, so the
	// host-speed normalization never excuses it.
	base := doc(1, 0, nil)
	cur := doc(2, 0, nil)
	r := cur.Build.Envs["native"]
	r.CloneNs *= 3
	r.CloneVsBuildRatio = r.CloneNs / r.BuildNs
	cur.Build.Envs["native"] = r
	bad := compare(base, cur, 0.15)
	found := false
	for _, v := range bad {
		if strings.Contains(v, "clone/build ratio") && strings.Contains(v, "native") {
			found = true
		}
	}
	if !found {
		t.Fatalf("want a native clone/build ratio violation, got %v", bad)
	}
}

func TestCompareMissingBuildEnv(t *testing.T) {
	base := doc(1, 0, nil)
	cur := doc(1, 0, nil)
	delete(cur.Build.Envs, "nested")
	bad := compare(base, cur, 0.15)
	if len(bad) != 1 || !strings.Contains(bad[0], "build nested: missing") {
		t.Fatalf("want one missing-build violation, got %v", bad)
	}
}

func TestCompareV1BaselineSkipsBuild(t *testing.T) {
	// A pre-snapshot (v1) baseline carries no build section; the gate must
	// still run the walk/matrix comparison without inventing violations.
	base := doc(1, 0, nil)
	base.Schema = "dmt-bench/v1"
	base.Build.Envs = nil
	if bad := compare(base, doc(1, 0, nil), 0.15); len(bad) != 0 {
		t.Fatalf("v1 baseline flagged: %v", bad)
	}
}
