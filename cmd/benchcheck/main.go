// Command benchcheck is the benchmark-regression gate: it compares a freshly
// emitted benchmark record (go test -run EmitBenchJSON -benchjson fresh.json .)
// against the committed BENCH_sim.json and exits non-zero when a tracked
// metric regressed beyond the tolerance.
//
// Time-based metrics (ns/walk, matrix seconds) are never compared raw —
// the CI runner and the machine that produced the committed baseline differ
// in clock speed, cache size, and load. Instead benchcheck computes the
// per-metric current/baseline ratio, takes the geometric mean across all
// time metrics as the host-speed factor, and flags only metrics whose ratio
// exceeds that common factor by more than the tolerance. A change that slows
// one walk path sticks out against the others; a uniform shift is absorbed
// as host speed. (The known blind spot: a perfectly uniform slowdown of
// every path is indistinguishable from a slower host.) Allocation counts are
// machine-independent and compared strictly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dmt/internal/stats"
)

type walkRecord struct {
	NsPerWalk     float64 `json:"ns_per_walk"`
	AllocsPerWalk float64 `json:"allocs_per_walk"`
	BytesPerWalk  float64 `json:"bytes_per_walk"`
	// Schema v3: simulated walk-latency quantiles from the observability
	// histogram (internal/obs). Simulated cycles are a deterministic
	// function of the configuration — host speed never enters — so these
	// are compared directly, like allocation counts. Zero means the
	// baseline predates v3 and the field is skipped.
	P50WalkCycles float64 `json:"p50_walk_cycles,omitempty"`
	P90WalkCycles float64 `json:"p90_walk_cycles,omitempty"`
	P99WalkCycles float64 `json:"p99_walk_cycles,omitempty"`
	MaxWalkCycles float64 `json:"max_walk_cycles,omitempty"`
}

// buildRecord is one environment's machine-construction cost (schema v2).
// The ns figures are host-dependent and join the normalized time pool; the
// clone/build ratio is measured within a single host and compared directly.
type buildRecord struct {
	BuildNs           float64 `json:"build_ns"`
	CloneNs           float64 `json:"clone_ns"`
	CloneVsBuildRatio float64 `json:"clone_vs_build_ratio"`
}

type benchDoc struct {
	Schema string                `json:"schema"`
	Walks  map[string]walkRecord `json:"walks"`
	Matrix struct {
		SerialSeconds   float64 `json:"serial_seconds"`
		Workers8Seconds float64 `json:"workers8_seconds"`
		// NumCPU is recorded with the cell because workers8_seconds only
		// measures parallel speed on a multi-core host; on one CPU the eight
		// workers oversubscribe the core and the figure is scheduling noise.
		NumCPU int `json:"numcpu"`
	} `json:"matrix"`
	Build struct {
		Envs             map[string]buildRecord `json:"envs"`
		MatrixBuildShare float64                `json:"matrix_build_share"`
	} `json:"build"`
}

func load(path string) (*benchDoc, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d benchDoc
	if err := json.Unmarshal(buf, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	// v1 lacks the build section and v2 the walk-latency quantiles; both are
	// still accepted so the gate can run against pre-snapshot baselines (the
	// missing metrics are then skipped).
	switch d.Schema {
	case "dmt-bench/v1", "dmt-bench/v2", "dmt-bench/v3":
	default:
		return nil, fmt.Errorf("%s: unsupported schema %q", path, d.Schema)
	}
	return &d, nil
}

// timeMetric is one time-based measurement present in both records.
type timeMetric struct {
	name      string
	base, cur float64
}

// quantileMetric names one of the simulated-cycle quantile fields so the
// per-walk comparison loop and its violation messages stay table-driven.
type quantileMetric struct {
	name      string
	base, cur float64
}

// compare returns a human-readable violation per regressed metric, empty if
// the current record is within tolerance of the baseline. A degenerate
// record — an empty walks section, or a time pool too small to estimate the
// host-speed factor — is an error, not a pass: a gate that silently compares
// nothing would report success on garbage input.
func compare(base, cur *benchDoc, tol float64) ([]string, error) {
	if len(base.Walks) == 0 {
		return nil, fmt.Errorf("baseline walks section is empty")
	}
	if len(cur.Walks) == 0 {
		return nil, fmt.Errorf("current walks section is empty")
	}
	var bad []string
	var times []timeMetric
	for name, b := range base.Walks {
		c, ok := cur.Walks[name]
		if !ok {
			bad = append(bad, fmt.Sprintf("walk %s: missing from current record", name))
			continue
		}
		if c.AllocsPerWalk > b.AllocsPerWalk+0.5 {
			bad = append(bad, fmt.Sprintf("walk %s: allocs/walk %.1f, baseline %.1f (machine-independent; no tolerance)",
				name, c.AllocsPerWalk, b.AllocsPerWalk))
		}
		// Simulated walk-latency quantiles (schema v3) are deterministic
		// cycle counts, so host speed cancels and they compare directly.
		// Pre-v3 baselines carry zeros and are skipped.
		for _, q := range []quantileMetric{
			{"p50 cycles", b.P50WalkCycles, c.P50WalkCycles},
			{"p90 cycles", b.P90WalkCycles, c.P90WalkCycles},
			{"p99 cycles", b.P99WalkCycles, c.P99WalkCycles},
			{"max cycles", b.MaxWalkCycles, c.MaxWalkCycles},
		} {
			if q.base > 0 && q.cur > q.base*(1+tol) {
				bad = append(bad, fmt.Sprintf("walk %s: %s %.0f, baseline %.0f (simulated, host-independent, tolerance %d%%)",
					name, q.name, q.cur, q.base, int(tol*100)))
			}
		}
		if b.NsPerWalk > 0 && c.NsPerWalk > 0 {
			times = append(times, timeMetric{"walk " + name + " ns/walk", b.NsPerWalk, c.NsPerWalk})
		}
	}
	if base.Matrix.SerialSeconds > 0 && cur.Matrix.SerialSeconds > 0 {
		times = append(times, timeMetric{"matrix serial seconds", base.Matrix.SerialSeconds, cur.Matrix.SerialSeconds})
	}
	// workers8_seconds joins the time pool only when both records come from
	// multi-core hosts (numcpu recorded with the cell). A single-CPU side
	// turns the eight-worker run into pure oversubscription — slower than
	// serial by scheduling noise alone — and comparing it would poison the
	// host-speed factor for every real metric. Records predating the numcpu
	// field carry 0 and are likewise skipped.
	if base.Matrix.Workers8Seconds > 0 && cur.Matrix.Workers8Seconds > 0 &&
		base.Matrix.NumCPU > 1 && cur.Matrix.NumCPU > 1 {
		times = append(times, timeMetric{"matrix workers8 seconds", base.Matrix.Workers8Seconds, cur.Matrix.Workers8Seconds})
	}
	for name, b := range base.Build.Envs {
		c, ok := cur.Build.Envs[name]
		if !ok {
			bad = append(bad, fmt.Sprintf("build %s: missing from current record", name))
			continue
		}
		if b.BuildNs > 0 && c.BuildNs > 0 {
			times = append(times, timeMetric{"build " + name + " ns", b.BuildNs, c.BuildNs})
		}
		if b.CloneNs > 0 && c.CloneNs > 0 {
			times = append(times, timeMetric{"clone " + name + " ns", b.CloneNs, c.CloneNs})
		}
		// Both sides of the ratio come from one host, so host speed cancels
		// and the comparison is direct: a clone drifting toward build cost
		// means the snapshot stopped paying for itself.
		if b.CloneVsBuildRatio > 0 && c.CloneVsBuildRatio > b.CloneVsBuildRatio*(1+tol) {
			bad = append(bad, fmt.Sprintf("build %s: clone/build ratio %.3f, baseline %.3f (host-independent, tolerance %d%%)",
				name, c.CloneVsBuildRatio, b.CloneVsBuildRatio, int(tol*100)))
		}
	}
	if len(times) < 2 {
		// With fewer than two time metrics there is no cross-metric signal
		// to separate host speed from regression. stats.GeoMean would hand
		// back 0 for an empty pool and the gate would compare nothing —
		// name the contributing sections instead of passing vacuously.
		return nil, fmt.Errorf("time pool has %d shared metric(s) from walks (%d baseline), matrix, and build (%d baseline envs); need at least 2 to estimate the host-speed factor",
			len(times), len(base.Walks), len(base.Build.Envs))
	}
	ratios := make([]float64, len(times))
	for i, t := range times {
		ratios[i] = t.cur / t.base
	}
	host, err := stats.GeoMean(ratios)
	if err != nil {
		return nil, fmt.Errorf("time pool: %w", err)
	}
	for i, t := range times {
		if ratios[i] > host*(1+tol) {
			bad = append(bad, fmt.Sprintf("%s: %.1f vs baseline %.1f (%.2fx, host factor %.2fx, tolerance %d%%)",
				t.name, t.cur, t.base, ratios[i], host, int(tol*100)))
		}
	}
	return bad, nil
}

func main() {
	baseline := flag.String("baseline", "BENCH_sim.json", "committed benchmark record")
	current := flag.String("current", "", "freshly emitted benchmark record (required)")
	tol := flag.Float64("tolerance", 0.15, "allowed per-metric slowdown beyond the common host factor")
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchcheck: -current is required")
		os.Exit(2)
	}
	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}
	bad, err := compare(base, cur, *tol)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}
	if len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: %d regression(s) vs %s:\n", len(bad), *baseline)
		for _, v := range bad {
			fmt.Fprintln(os.Stderr, "  "+v)
		}
		os.Exit(1)
	}
	fmt.Printf("benchcheck: %d walk metrics, %d build/clone cells, and matrix wall clock within %d%% of %s\n",
		len(base.Walks), len(base.Build.Envs), int(*tol*100), *baseline)
}
