// Command dmtsweep drives a fault-tolerant distributed sweep: it expands
// a configuration template (env × design × workload × THP × seed) into
// cells, schedules them across a fleet of dmtserved workers, and survives
// worker loss, drains, stragglers, and its own restarts.
//
// Usage:
//
//	dmtsweep [-workers http://a:7677,http://b:7677] [-store DIR]
//	         [-envs native,virt] [-designs vanilla,dmt] [-workloads GUPS]
//	         [-thp true] [-seeds 1,2,3] [-ops N] [-ws-mib N]
//	         [-cache-scale N] [-shards N] [-verify]
//	         [-concurrency N] [-cell-timeout 2m] [-max-attempts 4]
//	         [-backoff-base 100ms] [-backoff-max 5s] [-hedge-after D]
//	         [-fail-threshold 3] [-cooldown 5s] [-no-local]
//	         [-out FILE] [-quiet]
//
// With -store, completed cells are durable: a restarted sweep re-runs
// only what is missing and produces bit-identical results (DESIGN.md
// §12). With no -workers, every cell runs in-process. Per-cell progress
// streams to stderr; the machine-readable result JSON goes to -out (or
// stdout). Exit status: 0 all cells completed, 1 any cell failed or the
// sweep was interrupted, 2 bad flags.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"dmt/internal/obs"
	"dmt/internal/store"
	"dmt/internal/sweep"
)

type cliFlags struct {
	workers   []string
	storeDir  string
	envs      []string
	designs   []string
	workloads []string
	thp       []bool
	seeds     []int64

	ops        int
	wsMiB      int
	cacheScale int
	shards     int
	verify     bool

	concurrency   int
	cellTimeout   time.Duration
	maxAttempts   int
	backoffBase   time.Duration
	backoffMax    time.Duration
	hedgeAfter    time.Duration
	failThreshold int
	cooldown      time.Duration
	noLocal       bool

	out   string
	quiet bool
}

// splitList parses a comma-separated flag value, trimming blanks so
// "a, b," and "a,b" mean the same fleet.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseSeeds(s string) ([]int64, error) {
	var out []int64
	for _, part := range splitList(s) {
		v, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("-seeds: %q is not an integer", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseBools(s, name string) ([]bool, error) {
	var out []bool
	for _, part := range splitList(s) {
		v, err := strconv.ParseBool(part)
		if err != nil {
			return nil, fmt.Errorf("%s: %q is not a boolean", name, part)
		}
		out = append(out, v)
	}
	return out, nil
}

// validate rejects nonsensical sizing up front (exit 2), mirroring the
// other dmt commands. Template-level validation (unknown envs/designs)
// happens at expansion and is also exit 2 — before any work is scheduled.
func (f cliFlags) validate() error {
	switch {
	case len(f.workers) == 0 && f.noLocal:
		return fmt.Errorf("-no-local requires at least one -workers URL")
	case f.ops < 0:
		return fmt.Errorf("-ops must be >= 0 (got %d)", f.ops)
	case f.wsMiB < 0:
		return fmt.Errorf("-ws-mib must be >= 0 (got %d)", f.wsMiB)
	case f.cacheScale < 0:
		return fmt.Errorf("-cache-scale must be >= 0 (got %d)", f.cacheScale)
	case f.shards < 0:
		return fmt.Errorf("-shards must be >= 0 (got %d)", f.shards)
	case f.concurrency < 0:
		return fmt.Errorf("-concurrency must be >= 0 (got %d)", f.concurrency)
	case f.maxAttempts < 0:
		return fmt.Errorf("-max-attempts must be >= 0 (got %d)", f.maxAttempts)
	case f.cellTimeout < 0 || f.backoffBase < 0 || f.backoffMax < 0 ||
		f.hedgeAfter < 0 || f.cooldown < 0:
		return fmt.Errorf("durations must be >= 0")
	case f.failThreshold < 0:
		return fmt.Errorf("-fail-threshold must be >= 0 (got %d)", f.failThreshold)
	}
	for _, w := range f.workers {
		if !strings.HasPrefix(w, "http://") && !strings.HasPrefix(w, "https://") {
			return fmt.Errorf("-workers: %q is not an http(s) URL", w)
		}
	}
	return nil
}

// cellOut is one cell in the machine-readable report.
type cellOut struct {
	Key      string          `json:"key"`
	Source   string          `json:"source,omitempty"`
	Worker   string          `json:"worker,omitempty"`
	Attempts int             `json:"attempts"`
	Error    string          `json:"error,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
}

type report struct {
	Cells     []cellOut `json:"cells"`
	FromStore int       `json:"from_store"`
	RanWorker int       `json:"ran_worker"`
	RanLocal  int       `json:"ran_local"`
	Failed    int       `json:"failed"`
}

func buildReport(res *sweep.Result) report {
	rep := report{
		FromStore: res.FromStore, RanWorker: res.RanWorker,
		RanLocal: res.RanLocal, Failed: res.Failed,
	}
	for _, cr := range res.Cells {
		co := cellOut{Key: cr.Cell.Key, Source: string(cr.Source),
			Worker: cr.Worker, Attempts: cr.Attempts, Result: cr.Payload}
		if cr.Err != nil {
			co.Error = cr.Err.Error()
		}
		rep.Cells = append(rep.Cells, co)
	}
	return rep
}

func run() int {
	var (
		workers   = flag.String("workers", "", "comma-separated dmtserved base URLs (empty: run every cell in-process)")
		storeDir  = flag.String("store", "", "durable result store directory (empty disables resume/dedupe)")
		envs      = flag.String("envs", "native", "environments to sweep (comma-separated)")
		designs   = flag.String("designs", "vanilla", "designs to sweep (comma-separated)")
		workloads = flag.String("workloads", "GUPS", "workloads to sweep (comma-separated)")
		thp       = flag.String("thp", "true", "THP settings to sweep (comma-separated booleans)")
		seeds     = flag.String("seeds", "1", "seeds to sweep (comma-separated integers)")

		ops        = flag.Int("ops", 0, "trace length per cell (0: engine default)")
		wsMiB      = flag.Int("ws-mib", 0, "working-set MiB per cell (0: engine default)")
		cacheScale = flag.Int("cache-scale", 0, "page-walk cache scale (0: engine default)")
		shards     = flag.Int("shards", 0, "engine shards per cell (0: engine default)")
		verify     = flag.Bool("verify", false, "run cells with sharding self-verification")

		concurrency   = flag.Int("concurrency", 0, "cells in flight at once (0: 2 per worker, min 2)")
		cellTimeout   = flag.Duration("cell-timeout", 2*time.Minute, "per-attempt deadline")
		maxAttempts   = flag.Int("max-attempts", 4, "tries per cell, first included (0: default)")
		backoffBase   = flag.Duration("backoff-base", 100*time.Millisecond, "first retry backoff")
		backoffMax    = flag.Duration("backoff-max", 5*time.Second, "retry backoff cap")
		hedgeAfter    = flag.Duration("hedge-after", 0, "hedge stragglers onto another worker after this long (0 disables)")
		failThreshold = flag.Int("fail-threshold", 3, "consecutive transient failures that evict a worker")
		cooldown      = flag.Duration("cooldown", 5*time.Second, "eviction cooldown before a readiness re-probe")
		noLocal       = flag.Bool("no-local", false, "fail cells instead of degrading to in-process execution")

		out   = flag.String("out", "", "write the result JSON to this file (default stdout)")
		quiet = flag.Bool("quiet", false, "suppress per-cell progress lines on stderr")
	)
	flag.Parse()

	sds, err := parseSeeds(*seeds)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmtsweep: %v\n", err)
		return 2
	}
	thps, err := parseBools(*thp, "-thp")
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmtsweep: %v\n", err)
		return 2
	}
	f := cliFlags{
		workers: splitList(*workers), storeDir: *storeDir,
		envs: splitList(*envs), designs: splitList(*designs),
		workloads: splitList(*workloads), thp: thps, seeds: sds,
		ops: *ops, wsMiB: *wsMiB, cacheScale: *cacheScale,
		shards: *shards, verify: *verify,
		concurrency: *concurrency, cellTimeout: *cellTimeout,
		maxAttempts: *maxAttempts, backoffBase: *backoffBase,
		backoffMax: *backoffMax, hedgeAfter: *hedgeAfter,
		failThreshold: *failThreshold, cooldown: *cooldown,
		noLocal: *noLocal, out: *out, quiet: *quiet,
	}
	if err := f.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "dmtsweep: %v\n", err)
		return 2
	}

	cells, err := sweep.Template{
		Envs: f.envs, Designs: f.designs, Workloads: f.workloads,
		THP: f.thp, Seeds: f.seeds,
		Ops: f.ops, WSMiB: f.wsMiB, CacheScale: f.cacheScale,
		Shards: f.shards, Verify: f.verify,
	}.Expand()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmtsweep: %v\n", err)
		return 2
	}

	var st *store.Store
	if f.storeDir != "" {
		st, err = store.Open(f.storeDir, obs.Default)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmtsweep: opening store: %v\n", err)
			return 2
		}
	}

	cfg := sweep.Config{
		Workers: f.workers, Store: st, Registry: obs.Default,
		Concurrency: f.concurrency, CellTimeout: f.cellTimeout,
		MaxAttempts: f.maxAttempts, BackoffBase: f.backoffBase,
		BackoffMax: f.backoffMax, HedgeAfter: f.hedgeAfter,
		FailThreshold: f.failThreshold, Cooldown: f.cooldown,
		DisableLocal: f.noLocal,
	}
	if !f.quiet {
		cfg.OnUpdate = func(u sweep.Update) {
			line := fmt.Sprintf("cell %d/%d %-9s", u.Cell+1, u.Total, u.Event)
			if u.Attempt > 0 {
				line += fmt.Sprintf(" attempt=%d", u.Attempt)
			}
			if u.Worker != "" {
				line += " worker=" + u.Worker
			}
			if u.Err != "" {
				line += " err=" + u.Err
			}
			fmt.Fprintf(os.Stderr, "%s  [%s]\n", line, u.Key)
		}
	}
	coord, err := sweep.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmtsweep: %v\n", err)
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "dmtsweep: %d cells, %d workers, store=%q\n",
		len(cells), len(f.workers), f.storeDir)

	res, runErr := coord.Run(ctx, cells)

	rep := buildReport(res)
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmtsweep: encoding report: %v\n", err)
		return 1
	}
	enc = append(enc, '\n')
	if f.out != "" {
		if err := os.WriteFile(f.out, enc, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "dmtsweep: writing %s: %v\n", f.out, err)
			return 1
		}
	} else {
		os.Stdout.Write(enc)
	}

	fmt.Fprintf(os.Stderr, "dmtsweep: done: %d from store, %d on workers, %d local, %d failed\n",
		res.FromStore, res.RanWorker, res.RanLocal, res.Failed)
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "dmtsweep: interrupted (%v); re-run with the same -store to resume\n", runErr)
		return 1
	}
	if res.Failed > 0 {
		return 1
	}
	return 0
}

func main() { os.Exit(run()) }
