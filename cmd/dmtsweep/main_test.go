package main

import (
	"strings"
	"testing"
	"time"

	"dmt/internal/sweep"
)

func TestSplitList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"a", []string{"a"}},
		{"a,b", []string{"a", "b"}},
		{" a , b ,", []string{"a", "b"}},
		{",,", nil},
	}
	for _, tc := range cases {
		got := splitList(tc.in)
		if len(got) != len(tc.want) {
			t.Fatalf("splitList(%q) = %v, want %v", tc.in, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("splitList(%q) = %v, want %v", tc.in, got, tc.want)
			}
		}
	}
}

func TestParseSeedsAndBools(t *testing.T) {
	seeds, err := parseSeeds("1, 2,3")
	if err != nil || len(seeds) != 3 || seeds[2] != 3 {
		t.Fatalf("parseSeeds = %v, %v", seeds, err)
	}
	if _, err := parseSeeds("1,x"); err == nil {
		t.Fatal("parseSeeds accepted a non-integer")
	}
	bools, err := parseBools("true,false", "-thp")
	if err != nil || len(bools) != 2 || bools[0] != true || bools[1] != false {
		t.Fatalf("parseBools = %v, %v", bools, err)
	}
	if _, err := parseBools("maybe", "-thp"); err == nil {
		t.Fatal("parseBools accepted a non-boolean")
	}
}

// TestFlagValidation pins the exit-2 surface: sizing and URL mistakes are
// rejected before any cell is scheduled.
func TestFlagValidation(t *testing.T) {
	ok := cliFlags{
		workers: []string{"http://a:7677"},
		envs:    []string{"native"}, designs: []string{"vanilla"},
		workloads: []string{"GUPS"}, thp: []bool{true}, seeds: []int64{1},
		cellTimeout: time.Minute, maxAttempts: 4, failThreshold: 3,
	}
	if err := ok.validate(); err != nil {
		t.Fatalf("valid flags rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*cliFlags)
		want   string
	}{
		{"no-local without workers", func(f *cliFlags) { f.workers = nil; f.noLocal = true }, "-no-local"},
		{"negative ops", func(f *cliFlags) { f.ops = -1 }, "-ops"},
		{"negative ws", func(f *cliFlags) { f.wsMiB = -1 }, "-ws-mib"},
		{"negative shards", func(f *cliFlags) { f.shards = -1 }, "-shards"},
		{"negative concurrency", func(f *cliFlags) { f.concurrency = -1 }, "-concurrency"},
		{"negative attempts", func(f *cliFlags) { f.maxAttempts = -1 }, "-max-attempts"},
		{"negative timeout", func(f *cliFlags) { f.cellTimeout = -time.Second }, "durations"},
		{"negative threshold", func(f *cliFlags) { f.failThreshold = -1 }, "-fail-threshold"},
		{"bare host worker", func(f *cliFlags) { f.workers = []string{"a:7677"} }, "-workers"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := ok
			tc.mutate(&f)
			err := f.validate()
			if err == nil {
				t.Fatal("invalid flags accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %q", err, tc.want)
			}
		})
	}
}

// TestBuildReport: failures carry their error, successes their payload,
// and tallies pass through.
func TestBuildReport(t *testing.T) {
	res := &sweep.Result{
		Cells: []sweep.CellResult{
			{Cell: sweep.Cell{Key: "k0"}, Payload: []byte(`{"ops":1}`),
				Source: sweep.SourceStore},
			{Cell: sweep.Cell{Key: "k1"}, Err: sweep.ErrNoWorkers, Attempts: 4},
		},
		FromStore: 1, Failed: 1,
	}
	rep := buildReport(res)
	if len(rep.Cells) != 2 || rep.FromStore != 1 || rep.Failed != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Cells[0].Error != "" || string(rep.Cells[0].Result) != `{"ops":1}` {
		t.Fatalf("success cell = %+v", rep.Cells[0])
	}
	if rep.Cells[1].Error == "" || rep.Cells[1].Result != nil {
		t.Fatalf("failed cell = %+v", rep.Cells[1])
	}
}
