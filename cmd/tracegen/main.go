// Command tracegen records and inspects workload memory traces in the
// repository's trace format, decoupling trace generation from simulation
// the way the paper's DynamoRIO traces do (§5).
//
// Usage:
//
//	tracegen -workload Redis -n 1000000 -o redis.trace [-ws MiB] [-seed N]
//	tracegen -inspect redis.trace
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dmt/internal/kernel"
	"dmt/internal/mem"
	"dmt/internal/phys"
	"dmt/internal/workload"
)

func main() {
	var (
		wlName  = flag.String("workload", "GUPS", "benchmark name (Table 4)")
		n       = flag.Int("n", 1_000_000, "references to record")
		out     = flag.String("o", "", "output trace file")
		wsMiB   = flag.Int("ws", 256, "working set in MiB")
		seed    = flag.Int64("seed", 42, "generator seed")
		inspect = flag.String("inspect", "", "trace file to summarize instead of recording")
	)
	flag.Parse()

	if *inspect != "" {
		summarize(*inspect)
		return
	}
	if *out == "" {
		log.Fatal("need -o FILE (or -inspect FILE)")
	}
	wl, err := workload.ByName(*wlName)
	if err != nil {
		log.Fatal(err)
	}
	ws := uint64(*wsMiB) << 20
	as, err := kernel.NewAddressSpace(phys.New(0, int(ws>>mem.PageShift4K)*3/2+(128<<20>>mem.PageShift4K)), kernel.Config{})
	if err != nil {
		log.Fatal(err)
	}
	built, err := wl.Build(as, ws)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := workload.Record(f, built.NewGen(*seed), *n); err != nil {
		log.Fatal(err)
	}
	st, _ := f.Stat()
	fmt.Printf("recorded %d refs of %s (ws %d MiB, seed %d) to %s (%d bytes, %.2f B/ref)\n",
		*n, wl.Name, *wsMiB, *seed, *out, st.Size(), float64(st.Size())/float64(*n))
}

func summarize(path string) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	tr, err := workload.NewTraceReader(f)
	if err != nil {
		log.Fatal(err)
	}
	pages := map[uint64]struct{}{}
	writes, count := 0, 0
	lo, hi := ^mem.VAddr(0), mem.VAddr(0)
	for {
		va, w, ok, err := tr.Next()
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			break
		}
		count++
		if w {
			writes++
		}
		pages[mem.PageNumber(va, mem.Size4K)] = struct{}{}
		if va < lo {
			lo = va
		}
		if va > hi {
			hi = va
		}
	}
	fmt.Printf("%s: %d refs (%.1f%% writes), %d distinct 4K pages (%.1f MiB touched), VA span [%#x, %#x]\n",
		path, count, 100*float64(writes)/float64(max(count, 1)),
		len(pages), float64(len(pages))*4/1024, uint64(lo), uint64(hi))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
