// Command tracegen records and inspects workload memory traces in the
// repository's trace format, decoupling trace generation from simulation
// the way the paper's DynamoRIO traces do (§5).
//
// Usage:
//
//	tracegen -workload Redis -n 1000000 -o redis.trace [-ws MiB] [-seed N]
//	tracegen -inspect redis.trace
//
// Flag values are validated up front: -n 0 or a negative -ws exits with
// status 2 and a one-line message instead of overflowing the frame-count
// arithmetic or reporting NaN bytes per reference. Write and close errors
// are surfaced — a full disk fails the run instead of printing a success
// line with a bogus byte count.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dmt/internal/kernel"
	"dmt/internal/mem"
	"dmt/internal/phys"
	"dmt/internal/workload"
)

// cliFlags collects every user-supplied value so validation is a pure,
// testable function (the same pattern as cmd/dmtsim).
type cliFlags struct {
	wlName  string
	n       int
	out     string
	wsMiB   int
	seed    int64
	inspect string
}

// validate rejects nonsensical sizing and unknown names up front and
// returns the parsed workload for record mode; main maps any error to
// exit status 2. Inspect mode uses none of the record flags.
func (f cliFlags) validate() (workload.Spec, error) {
	if f.inspect != "" {
		return workload.Spec{}, nil
	}
	switch {
	case f.n <= 0:
		return workload.Spec{}, fmt.Errorf("-n must be positive (got %d)", f.n)
	case f.wsMiB < 1:
		return workload.Spec{}, fmt.Errorf("-ws must be >= 1 (got %d)", f.wsMiB)
	case f.out == "":
		return workload.Spec{}, fmt.Errorf("need -o FILE (or -inspect FILE)")
	}
	return workload.ByName(f.wlName)
}

func main() {
	var f cliFlags
	flag.StringVar(&f.wlName, "workload", "GUPS", "benchmark name (Table 4)")
	flag.IntVar(&f.n, "n", 1_000_000, "references to record")
	flag.StringVar(&f.out, "o", "", "output trace file")
	flag.IntVar(&f.wsMiB, "ws", 256, "working set in MiB")
	flag.Int64Var(&f.seed, "seed", 42, "generator seed")
	flag.StringVar(&f.inspect, "inspect", "", "trace file to summarize instead of recording")
	flag.Parse()

	wl, err := f.validate()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(2)
	}
	if f.inspect != "" {
		summarize(f.inspect)
		return
	}
	if err := record(f, wl); err != nil {
		log.Fatal(err)
	}
}

// record builds the workload layout, streams f.n references to f.out, and
// prints the recorded size. Every write-side error — creation, recording,
// Stat, Close — fails the run: the success line is printed only once the
// file is durably closed with a believable size.
func record(f cliFlags, wl workload.Spec) error {
	ws := uint64(f.wsMiB) << 20
	as, err := kernel.NewAddressSpace(phys.New(0, int(ws>>mem.PageShift4K)*3/2+(128<<20>>mem.PageShift4K)), kernel.Config{})
	if err != nil {
		return err
	}
	built, err := wl.Build(as, ws)
	if err != nil {
		return err
	}
	out, err := os.Create(f.out)
	if err != nil {
		return err
	}
	if err := workload.Record(out, built.NewGen(f.seed), f.n); err != nil {
		out.Close()
		return fmt.Errorf("recording %s: %w", f.out, err)
	}
	st, err := out.Stat()
	if err != nil {
		out.Close()
		return fmt.Errorf("stat %s: %w", f.out, err)
	}
	if err := out.Close(); err != nil {
		return fmt.Errorf("closing %s: %w", f.out, err)
	}
	fmt.Printf("recorded %d refs of %s (ws %d MiB, seed %d) to %s (%d bytes, %.2f B/ref)\n",
		f.n, wl.Name, f.wsMiB, f.seed, f.out, st.Size(), float64(st.Size())/float64(f.n))
	return nil
}

func summarize(path string) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	tr, err := workload.NewTraceReader(f)
	if err != nil {
		log.Fatal(err)
	}
	pages := map[uint64]struct{}{}
	writes, count := 0, 0
	lo, hi := ^mem.VAddr(0), mem.VAddr(0)
	for {
		va, w, ok, err := tr.Next()
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			break
		}
		count++
		if w {
			writes++
		}
		pages[mem.PageNumber(va, mem.Size4K)] = struct{}{}
		if va < lo {
			lo = va
		}
		if va > hi {
			hi = va
		}
	}
	fmt.Printf("%s: %d refs (%.1f%% writes), %d distinct 4K pages (%.1f MiB touched), VA span [%#x, %#x]\n",
		path, count, 100*float64(writes)/float64(max(count, 1)),
		len(pages), float64(len(pages))*4/1024, uint64(lo), uint64(hi))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
