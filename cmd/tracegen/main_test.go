package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dmt/internal/workload"
)

func goodFlags() cliFlags {
	return cliFlags{wlName: "GUPS", n: 1000, out: "out.trace", wsMiB: 16, seed: 42}
}

func TestValidateAcceptsRecordAndInspectModes(t *testing.T) {
	wl, err := goodFlags().validate()
	if err != nil {
		t.Fatalf("good record flags rejected: %v", err)
	}
	if wl.Name != "GUPS" {
		t.Fatalf("parsed workload = %q, want GUPS", wl.Name)
	}
	// Inspect mode ignores the record-side flags entirely, even bad ones.
	f := cliFlags{inspect: "some.trace", n: 0, wsMiB: -1}
	if _, err := f.validate(); err != nil {
		t.Fatalf("inspect mode rejected: %v", err)
	}
}

func TestValidateRejectsBadFlags(t *testing.T) {
	for _, tc := range []struct {
		name    string
		mutate  func(*cliFlags)
		wantErr string
	}{
		{"zero refs", func(f *cliFlags) { f.n = 0 }, "-n must be positive"},
		{"negative refs", func(f *cliFlags) { f.n = -5 }, "-n must be positive"},
		{"zero ws", func(f *cliFlags) { f.wsMiB = 0 }, "-ws must be >= 1"},
		{"negative ws", func(f *cliFlags) { f.wsMiB = -256 }, "-ws must be >= 1"},
		{"missing output", func(f *cliFlags) { f.out = "" }, "need -o FILE"},
		{"unknown workload", func(f *cliFlags) { f.wlName = "NoSuchBench" }, "NoSuchBench"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f := goodFlags()
			tc.mutate(&f)
			if _, err := f.validate(); err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.wantErr)
			} else if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestRecordRoundTrip exercises the happy path end to end: the recorded
// file must exist, be readable by the trace reader, and hold exactly -n
// references.
func TestRecordRoundTrip(t *testing.T) {
	f := goodFlags()
	f.out = filepath.Join(t.TempDir(), "gups.trace")
	f.n = 500
	wl, err := f.validate()
	if err != nil {
		t.Fatal(err)
	}
	if err := record(f, wl); err != nil {
		t.Fatalf("record: %v", err)
	}
	n, err := countRefs(f.out)
	if err != nil {
		t.Fatal(err)
	}
	if n != f.n {
		t.Fatalf("recorded %d refs, want %d", n, f.n)
	}
}

// TestRecordSurfacesCreateError pins the failure mode the old code hid: a
// write-side error must fail the run instead of reporting success.
func TestRecordSurfacesCreateError(t *testing.T) {
	f := goodFlags()
	f.out = filepath.Join(t.TempDir(), "no", "such", "dir", "x.trace")
	wl, err := f.validate()
	if err != nil {
		t.Fatal(err)
	}
	if err := record(f, wl); err == nil {
		t.Fatal("record into a missing directory should fail")
	}
}

func countRefs(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	tr, err := workload.NewTraceReader(f)
	if err != nil {
		return 0, err
	}
	n := 0
	for {
		_, _, ok, err := tr.Next()
		if err != nil {
			return 0, err
		}
		if !ok {
			return n, nil
		}
		n++
	}
}
