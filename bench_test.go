// Root benchmark harness: one benchmark per table and figure of the
// paper's evaluation (DESIGN.md §4 maps each to its experiment), plus the
// §6.3 overhead microbenchmarks, design ablations, and per-design walk
// throughput benchmarks.
//
// Each figure/table benchmark runs a scaled-down instance of the experiment
// and reports the headline quantities through b.ReportMetric; the full-size
// numbers come from cmd/figures (see EXPERIMENTS.md).
package dmt

import (
	"testing"

	"dmt/internal/cache"
	"dmt/internal/core"
	"dmt/internal/experiments"
	"dmt/internal/kernel"
	"dmt/internal/mem"
	"dmt/internal/perfmodel"
	"dmt/internal/phys"
	"dmt/internal/sim"
	"dmt/internal/stats"
	"dmt/internal/tea"
	"dmt/internal/tlb"
	"dmt/internal/virt"
	"dmt/internal/workload"
)

// benchOps and benchWS size the per-iteration experiment instances.
const (
	benchOps = 60_000
	benchWS  = 192 << 20
)

func benchRunner(wls ...workload.Spec) *experiments.Runner {
	if len(wls) == 0 {
		wls = []workload.Spec{workload.GUPS(), workload.Redis(), workload.Graph500()}
	}
	return experiments.NewRunner(experiments.Options{
		Ops: benchOps, WSBytes: benchWS, CacheScale: 16, Seed: 11, Workloads: wls,
	})
}

func benchCfg(env sim.Environment, d sim.Design, thp bool, wl workload.Spec) sim.Config {
	return sim.Config{
		Env: env, Design: d, THP: thp, Workload: wl,
		WSBytes: benchWS, Ops: benchOps, Seed: 11, CacheScale: 16,
	}
}

func mustRun(b *testing.B, cfg sim.Config) *sim.Result {
	b.Helper()
	r, err := sim.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

func mustGeo(b *testing.B, xs []float64) float64 {
	b.Helper()
	g, err := stats.GeoMean(xs)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func mustHier(b *testing.B, cfg cache.HierarchyConfig) *cache.Hierarchy {
	b.Helper()
	h, err := cache.NewHierarchy(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return h
}

func mustHyp(b *testing.B, frames int, cfg cache.HierarchyConfig) *virt.Hypervisor {
	b.Helper()
	h, err := virt.NewHypervisor(frames, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return h
}

func mustTLB(b *testing.B, cfg tlb.Config) *tlb.TLB {
	b.Helper()
	t, err := tlb.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return t
}

// ---- Tables and figures ----

// BenchmarkTable1_VMACharacteristics regenerates the Table 1 layout
// statistics for the seven benchmarks.
func BenchmarkTable1_VMACharacteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var covs float64
		for _, s := range workload.All() {
			as, err := kernel.NewAddressSpace(phys.New(0, 1<<17), kernel.Config{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Build(as, 256<<20); err != nil {
				b.Fatal(err)
			}
			st := workload.ComputeVMAStats(workload.RegionsOf(as))
			covs += float64(st.Cov99)
		}
		b.ReportMetric(covs/7, "avg-99%-cov-VMAs")
	}
}

// BenchmarkFig4_TranslationOverhead regenerates the motivation figure:
// vanilla translation overhead in native, virtualized, and nested setups.
func BenchmarkFig4_TranslationOverhead(b *testing.B) {
	wl := workload.GUPS()
	for i := 0; i < b.N; i++ {
		nat := mustRun(b, benchCfg(sim.EnvNative, sim.DesignVanilla, false, wl))
		virt := mustRun(b, benchCfg(sim.EnvVirt, sim.DesignVanilla, false, wl))
		nested := mustRun(b, benchCfg(sim.EnvNested, sim.DesignVanilla, false, wl))
		b.ReportMetric(nat.AvgWalkCycles(), "native-walk-cyc")
		b.ReportMetric(virt.AvgWalkCycles(), "virt-walk-cyc")
		b.ReportMetric(nested.AvgWalkCycles(), "nested-walk-cyc")
	}
}

// BenchmarkFig5_SpecVMACDF regenerates the SPEC VMA-characteristic CDFs.
func BenchmarkFig5_SpecVMACDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var medians [2]float64
		for j, year := range []int{2006, 2017} {
			var cls []float64
			for _, wl := range workload.SpecCorpus(year) {
				cls = append(cls, float64(workload.ComputeVMAStats(wl.Regions).Clusters))
			}
			medians[j] = stats.Percentile(cls, 50)
		}
		b.ReportMetric(medians[0], "spec06-median-clusters")
		b.ReportMetric(medians[1], "spec17-median-clusters")
	}
}

// BenchmarkFig14_NativeSpeedup regenerates the native page-walk speedups of
// DMT over the vanilla radix walker (4K pages).
func BenchmarkFig14_NativeSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		var pw []float64
		for _, wl := range r.Options().Workloads {
			ratio, err := r.WalkRatio(sim.EnvNative, sim.DesignDMT, false, wl)
			if err != nil {
				b.Fatal(err)
			}
			pw = append(pw, 1/ratio)
		}
		b.ReportMetric(mustGeo(b, pw), "dmt-pw-speedup")
	}
}

// BenchmarkFig15_VirtSpeedup regenerates the virtualized speedups of pvDMT
// over nested paging (the headline 1.58x of the paper, 4K pages).
func BenchmarkFig15_VirtSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		var pw, app []float64
		for _, wl := range r.Options().Workloads {
			ratio, err := r.WalkRatio(sim.EnvVirt, sim.DesignPvDMT, false, wl)
			if err != nil {
				b.Fatal(err)
			}
			calib, err := perfmodel.Get(wl.Name)
			if err != nil {
				b.Fatal(err)
			}
			pw = append(pw, 1/ratio)
			app = append(app, calib.AppSpeedupVirt(ratio))
		}
		b.ReportMetric(mustGeo(b, pw), "pvdmt-pw-speedup")
		b.ReportMetric(mustGeo(b, app), "pvdmt-app-speedup")
	}
}

// BenchmarkFig16_WalkBreakdown regenerates the per-PTE breakdown of the
// nested walk and reports the share of the two last-level fetches — the
// fraction pvDMT keeps (66% in the paper's Redis 4K breakdown).
func BenchmarkFig16_WalkBreakdown(b *testing.B) {
	wl := workload.Redis()
	for i := 0; i < b.N; i++ {
		res := mustRun(b, benchCfg(sim.EnvVirt, sim.DesignVanilla, false, wl))
		var leafCycles uint64
		for _, s := range res.Breakdown() {
			if s.Label == "20 gL1" || s.Label == "24 hL1" {
				leafCycles += s.Cycles
			}
		}
		b.ReportMetric(100*float64(leafCycles)/float64(res.WalkCycles), "leaf-share-%")
	}
}

// BenchmarkFig17_NestedSpeedup regenerates nested virtualization: pvDMT's
// application speedup over the shadow-compressed nested-KVM baseline.
func BenchmarkFig17_NestedSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		var app []float64
		for _, wl := range r.Options().Workloads {
			ratio, err := r.WalkRatio(sim.EnvNested, sim.DesignPvDMT, false, wl)
			if err != nil {
				b.Fatal(err)
			}
			calib, err := perfmodel.Get(wl.Name)
			if err != nil {
				b.Fatal(err)
			}
			app = append(app, calib.AppSpeedupNested(ratio))
		}
		b.ReportMetric(mustGeo(b, app), "pvdmt-nested-app-speedup")
	}
}

// BenchmarkTable5_SpeedupVsDesigns reports pvDMT's geomean page-walk
// speedup over each comparison design in a virtualized setup.
func BenchmarkTable5_SpeedupVsDesigns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		for _, other := range []sim.Design{sim.DesignFPT, sim.DesignECPT, sim.DesignAgile, sim.DesignASAP} {
			var ratios []float64
			for _, wl := range r.Options().Workloads {
				ours, err := r.Run(sim.EnvVirt, sim.DesignPvDMT, false, wl)
				if err != nil {
					b.Fatal(err)
				}
				theirs, err := r.Run(sim.EnvVirt, other, false, wl)
				if err != nil {
					b.Fatal(err)
				}
				ratios = append(ratios, theirs.AvgWalkCycles()/ours.AvgWalkCycles())
			}
			b.ReportMetric(mustGeo(b, ratios), "pvdmt-over-"+string(other))
		}
	}
}

// BenchmarkTable6_SequentialRefs verifies the sequential-reference counts
// of Table 6 in the simulator.
func BenchmarkTable6_SequentialRefs(b *testing.B) {
	wl := workload.GUPS()
	for i := 0; i < b.N; i++ {
		dmtNat := mustRun(b, benchCfg(sim.EnvNative, sim.DesignDMT, false, wl))
		pvVirt := mustRun(b, benchCfg(sim.EnvVirt, sim.DesignPvDMT, false, wl))
		pvNested := mustRun(b, benchCfg(sim.EnvNested, sim.DesignPvDMT, false, wl))
		b.ReportMetric(dmtNat.AvgSeqRefs(), "dmt-native-refs")
		b.ReportMetric(pvVirt.AvgSeqRefs(), "pvdmt-virt-refs")
		b.ReportMetric(pvNested.AvgSeqRefs(), "pvdmt-nested-refs")
	}
}

// ---- §6.3 overhead microbenchmarks ----

// BenchmarkOverhead_TEAAllocation measures the simulated kernel work of
// allocating a 50 MB TEA through the hypercall path. The VM is recreated
// periodically because the pv-TEA window is consumed monotonically (gTEA
// IDs are never reused, §4.5.1).
func BenchmarkOverhead_TEAAllocation(b *testing.B) {
	frames := 50 << 20 >> mem.PageShift4K
	var hyp *virt.Hypervisor
	var vm *virt.VM
	remake := func() {
		hyp = mustHyp(b, 1<<19, cache.DefaultConfig())
		var err error
		vm, err = hyp.NewVM(virt.VMConfig{Name: "vm", RAMBytes: 256 << 20, ASID: 1, PvTEAWindowBytes: 1 << 30})
		if err != nil {
			b.Fatal(err)
		}
	}
	remake()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		region, err := vm.AllocPvTEA(frames)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		hyp.MachinePhys.FreeContig(region.FetchBase, region.Frames)
		if (i+1)%16 == 0 {
			remake()
		}
		b.StartTimer()
	}
}

// BenchmarkOverhead_Hypercall measures the per-call overhead of the
// KVM_HC_ALLOC_TEA path with a minimal (single-frame) TEA. The VM is
// recreated periodically as the window is consumed.
func BenchmarkOverhead_Hypercall(b *testing.B) {
	var hyp *virt.Hypervisor
	var vm *virt.VM
	remake := func() {
		hyp = mustHyp(b, 1<<19, cache.DefaultConfig())
		var err error
		vm, err = hyp.NewVM(virt.VMConfig{Name: "vm", RAMBytes: 128 << 20, ASID: 1, PvTEAWindowBytes: 1 << 30})
		if err != nil {
			b.Fatal(err)
		}
	}
	remake()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		region, err := vm.AllocPvTEA(1)
		if err != nil {
			b.Fatal(err)
		}
		hyp.MachinePhys.FreeContig(region.FetchBase, region.Frames)
		if (i+1)%200000 == 0 {
			b.StopTimer()
			remake()
			b.StartTimer()
		}
	}
}

// BenchmarkOverhead_PageTableMemory reports DMT's translation-structure
// memory overhead over the vanilla page tables (§6.3: <2.5%).
func BenchmarkOverhead_PageTableMemory(b *testing.B) {
	wl := workload.GUPS()
	for i := 0; i < b.N; i++ {
		base := mustRun(b, benchCfg(sim.EnvNative, sim.DesignVanilla, false, wl))
		d := mustRun(b, benchCfg(sim.EnvNative, sim.DesignDMT, false, wl))
		b.ReportMetric(100*(float64(d.PTEBytes)/float64(base.PTEBytes)-1), "pt-mem-overhead-%")
	}
}

// ---- ablations (DESIGN.md §5) ----

// BenchmarkAblation_RegisterCount sweeps the DMT register-file size on the
// Redis layout (six disjoint major VMAs, Table 1) with clustering disabled
// so each VMA needs its own register: coverage climbs with the register
// count until all six majors fit, supporting the paper's choice of 16.
func BenchmarkAblation_RegisterCount(b *testing.B) {
	wl := workload.Redis()
	for _, regs := range []int{1, 2, 4, 8, 16} {
		regs := regs
		b.Run(benchName("regs", regs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(sim.EnvNative, sim.DesignDMT, false, wl)
				cfg.TEARegisters = regs
				cfg.TEAMergeThreshold = -1
				res := mustRun(b, cfg)
				b.ReportMetric(res.Coverage*100, "coverage-%")
				b.ReportMetric(res.AvgWalkCycles(), "walk-cyc")
			}
		})
	}
}

// BenchmarkAblation_MergeThreshold sweeps the VMA-clustering bubble
// threshold (the paper's t, default 2%) on Memcached.
func BenchmarkAblation_MergeThreshold(b *testing.B) {
	wl := workload.Memcached()
	for _, t := range []float64{-1, 0.005, 0.02, 0.08} {
		t := t
		b.Run(benchName("t%", int(t*1000)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(sim.EnvNative, sim.DesignDMT, false, wl)
				cfg.TEAMergeThreshold = t
				res := mustRun(b, cfg)
				b.ReportMetric(res.Coverage*100, "coverage-%")
			}
		})
	}
}

// BenchmarkAblation_Fragmentation runs DMT with physical memory
// pre-fragmented to index 0.99 (the §6.3 methodology): TEA allocation falls
// back to mapping splits, and coverage/latency show the cost.
func BenchmarkAblation_Fragmentation(b *testing.B) {
	wl := workload.GUPS()
	for _, frag := range []float64{0, 0.99} {
		frag := frag
		b.Run(benchName("fragx100", int(frag*100)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(sim.EnvNative, sim.DesignDMT, false, wl)
				cfg.FragmentTarget = frag
				res := mustRun(b, cfg)
				b.ReportMetric(res.Coverage*100, "coverage-%")
				b.ReportMetric(res.AvgWalkCycles(), "walk-cyc")
			}
		})
	}
}

func benchName(prefix string, v int) string {
	if v < 0 {
		return prefix + "=off"
	}
	return prefix + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// ---- walk-throughput microbenchmarks ----

// walkBench drives b.N translations through a pre-built machine via the
// sim.Instance API: construction stays outside the timed region, so ns/op
// and allocs/op measure the walk hot path alone. The driver is the engine's
// own batched loop (StepBatch, DESIGN.md §13), so these numbers measure
// exactly the path production runs take.
func walkBench(b *testing.B, env sim.Environment, d sim.Design) {
	cfg := benchCfg(env, d, false, workload.GUPS())
	cfg.Ops = b.N
	in, err := sim.NewInstance(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		n, err := in.StepBatch(sim.BatchOps)
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Fatal("no progress")
		}
		done += n
	}
	b.StopTimer()
	if _, err := in.Finish(); err != nil {
		b.Fatal(err)
	}
}

// One cell per walker design (DESIGN.md §13): the seven native designs,
// the five virt designs not already covered by a native cell, and the
// nested pvDMT configuration. Together they pin the walk hot path of all
// twelve designs in BENCH_sim.json and under CI's alloc gate.
func BenchmarkWalk_NativeVanilla(b *testing.B) { walkBench(b, sim.EnvNative, sim.DesignVanilla) }
func BenchmarkWalk_NativeDMT(b *testing.B)     { walkBench(b, sim.EnvNative, sim.DesignDMT) }
func BenchmarkWalk_NativeECPT(b *testing.B)    { walkBench(b, sim.EnvNative, sim.DesignECPT) }
func BenchmarkWalk_NativeFPT(b *testing.B)     { walkBench(b, sim.EnvNative, sim.DesignFPT) }
func BenchmarkWalk_NativeASAP(b *testing.B)    { walkBench(b, sim.EnvNative, sim.DesignASAP) }
func BenchmarkWalk_NativeVictima(b *testing.B) { walkBench(b, sim.EnvNative, sim.DesignVictima) }
func BenchmarkWalk_NativeUtopia(b *testing.B)  { walkBench(b, sim.EnvNative, sim.DesignUtopia) }
func BenchmarkWalk_VirtVanilla(b *testing.B)   { walkBench(b, sim.EnvVirt, sim.DesignVanilla) }
func BenchmarkWalk_VirtShadow(b *testing.B)    { walkBench(b, sim.EnvVirt, sim.DesignShadow) }
func BenchmarkWalk_VirtDMT(b *testing.B)       { walkBench(b, sim.EnvVirt, sim.DesignDMT) }
func BenchmarkWalk_VirtPvDMT(b *testing.B)     { walkBench(b, sim.EnvVirt, sim.DesignPvDMT) }
func BenchmarkWalk_VirtAgile(b *testing.B)     { walkBench(b, sim.EnvVirt, sim.DesignAgile) }
func BenchmarkWalk_NestedPvDMT(b *testing.B)   { walkBench(b, sim.EnvNested, sim.DesignPvDMT) }

// BenchmarkFetcher_DirectWalk measures the raw DMT fetcher in isolation
// (no trace generation, warm TLB bypassed).
func BenchmarkFetcher_DirectWalk(b *testing.B) {
	pa := phys.New(0, 1<<17)
	as, err := kernel.NewAddressSpace(pa, kernel.Config{ASID: 1})
	if err != nil {
		b.Fatal(err)
	}
	mgr := tea.NewManager(as, tea.NewPhysBackend(pa), tea.DefaultConfig(false))
	as.SetHooks(mgr)
	heap, err := as.MMap(0x40000000, 128<<20, kernel.VMAHeap, "heap")
	if err != nil {
		b.Fatal(err)
	}
	if err := as.Populate(heap); err != nil {
		b.Fatal(err)
	}
	hier := mustHier(b, cache.ScaledConfig(16))
	radix := core.NewRadixWalker(as.PT, hier, tlb.NewPWCScaled(16), 1)
	dmt := core.NewDMTWalker(mgr, as.Pool, hier, radix)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := heap.Start + mem.VAddr((uint64(i)*0x9e3779b97f4a7c15)%(heap.Size()-8))
		out := dmt.Walk(va)
		if !out.OK {
			b.Fatal("walk failed")
		}
	}
}

// BenchmarkAblation_FiveLevelTables contrasts translation depth scaling
// (§2.1.1): the baseline 2D walk grows from 24 to 35 references when page
// tables grow from four to five levels, while pvDMT stays at two.
func BenchmarkAblation_FiveLevelTables(b *testing.B) {
	for _, levels := range []int{mem.Levels4, mem.Levels5} {
		levels := levels
		b.Run(benchName("levels", levels), func(b *testing.B) {
			hyp := mustHyp(b, 1<<17, cache.ScaledConfig(16))
			vm, err := hyp.NewVM(virt.VMConfig{
				Name: "vm", RAMBytes: 128 << 20, ASID: 7, PTLevels: levels,
				HostDMT: true, PvTEAWindowBytes: 16 << 20,
			})
			if err != nil {
				b.Fatal(err)
			}
			guest, err := vm.NewGuestProcessCfg(kernel.Config{ASID: 1, Levels: levels})
			if err != nil {
				b.Fatal(err)
			}
			gmgr := tea.NewManager(guest, virt.NewHypercallBackend(vm), tea.DefaultConfig(false))
			guest.SetHooks(gmgr)
			heap, err := guest.MMap(0x40000000, 64<<20, kernel.VMAHeap, "heap")
			if err != nil {
				b.Fatal(err)
			}
			if err := guest.Populate(heap); err != nil {
				b.Fatal(err)
			}
			baseline := virt.NewNestedWalker(guest.PT, vm.HostAS.PT, hyp.Hier, 7)
			baseline.DisableMMUCaches()
			pv := virt.NewPvDMTWalker(vm, gmgr, guest.Pool, hyp.Hier, baseline)
			var baseRefs, pvRefs float64
			n := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				va := heap.Start + mem.VAddr((uint64(i)*0x9e3779b97f4a7c15)%(heap.Size()-8))
				baseRefs += float64(baseline.Walk(va).SeqSteps)
				pvRefs += float64(pv.Walk(va).SeqSteps)
				n++
			}
			b.ReportMetric(baseRefs/float64(n), "baseline-refs")
			b.ReportMetric(pvRefs/float64(n), "pvdmt-refs")
		})
	}
}

// BenchmarkAblation_OnDemandTEA contrasts the §7 on-demand TEA policy with
// the default eager allocation on a sparse mmap (1 GiB mapped, 16 MiB
// touched): reservation shrinks by an order of magnitude while touched
// pages keep single-fetch translation.
func BenchmarkAblation_OnDemandTEA(b *testing.B) {
	for _, onDemand := range []bool{false, true} {
		onDemand := onDemand
		name := "eager"
		if onDemand {
			name = "ondemand"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pa := phys.New(0, 1<<19)
				as, err := kernel.NewAddressSpace(pa, kernel.Config{})
				if err != nil {
					b.Fatal(err)
				}
				cfg := tea.DefaultConfig(false)
				cfg.OnDemand = onDemand
				mgr := tea.NewManager(as, tea.NewPhysBackend(pa), cfg)
				as.SetHooks(mgr)
				v, err := as.MMap(0x40000000, 1<<30, kernel.VMAFile, "bigfile")
				if err != nil {
					b.Fatal(err)
				}
				for off := mem.VAddr(0); off < 16<<20; off += mem.PageBytes4K {
					if _, err := as.Touch(v.Start+off, false); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(mgr.Stats.FramesLive)*4, "tea-KiB")
			}
		})
	}
}

// BenchmarkCtxSwitch_RegisterReload measures the raw cost of the DMT
// register reload a context switch adds (§4.1) relative to walk work.
func BenchmarkCtxSwitch_RegisterReload(b *testing.B) {
	pa := phys.New(0, 1<<17)
	as, err := kernel.NewAddressSpace(pa, kernel.Config{ASID: 1})
	if err != nil {
		b.Fatal(err)
	}
	mgr := tea.NewManager(as, tea.NewPhysBackend(pa), tea.DefaultConfig(false))
	as.SetHooks(mgr)
	heap, err := as.MMap(0x40000000, 64<<20, kernel.VMAHeap, "heap")
	if err != nil {
		b.Fatal(err)
	}
	if err := as.Populate(heap); err != nil {
		b.Fatal(err)
	}
	hier := mustHier(b, cache.ScaledConfig(16))
	radix := core.NewRadixWalker(as.PT, hier, tlb.NewPWCScaled(16), 1)
	d := core.NewDMTWalker(mgr, as.Pool, hier, radix)
	mmu := core.NewMMU(mustTLB(b, tlb.DefaultConfig()), d, 1)
	sched := core.NewScheduler(mmu, &core.Task{Name: "p", Walker: d, ASID: 1, UsesDMT: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.Switch()
		va := heap.Start + mem.VAddr((uint64(i)*0x9e3779b97f4a7c15)%(heap.Size()-8))
		if _, ok := sched.Translate(va); !ok {
			b.Fatal("translate failed")
		}
	}
	b.ReportMetric(float64(sched.SwitchCycles)/float64(sched.SwitchCycles+sched.AccessCycles)*100, "reload-share-%")
}

// --- Machine construction: cold builds versus prototype clones -----------
//
// BenchmarkBuild_* times a full from-scratch instantiation — substrate
// build plus wiring, the cost every shard used to pay; BenchmarkClone_*
// times minting the same drivable instance from a prebuilt prototype, what
// shards pay now. Both produce a ready-to-step Instance, so their ratio is
// the snapshot win, recorded in BENCH_sim.json's build section and gated by
// cmd/benchcheck. Clone cost is trace-length-independent —
// TestDeterminismCloneCostIndependentOfOps pins that property exactly.

func buildBench(b *testing.B, env sim.Environment, d sim.Design) {
	cfg := benchCfg(env, d, false, workload.GUPS())
	cfg.ColdBuild = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.NewInstance(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func cloneBench(b *testing.B, env sim.Environment, d sim.Design) {
	cfg := benchCfg(env, d, false, workload.GUPS())
	proto, err := sim.NewPrototype(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proto.NewInstance(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuild_Native(b *testing.B) { buildBench(b, sim.EnvNative, sim.DesignDMT) }
func BenchmarkBuild_Virt(b *testing.B)   { buildBench(b, sim.EnvVirt, sim.DesignPvDMT) }
func BenchmarkBuild_Nested(b *testing.B) { buildBench(b, sim.EnvNested, sim.DesignPvDMT) }

func BenchmarkClone_Native(b *testing.B) { cloneBench(b, sim.EnvNative, sim.DesignDMT) }
func BenchmarkClone_Virt(b *testing.B)   { cloneBench(b, sim.EnvVirt, sim.DesignPvDMT) }
func BenchmarkClone_Nested(b *testing.B) { cloneBench(b, sim.EnvNested, sim.DesignPvDMT) }
