// Hugepages: demonstrate DMT's multi-size TEA support (§4.4, Figure 12) —
// a THP-enabled process keeps separate TEAs for 4 KiB and 2 MiB PTEs, the
// fetcher probes them in parallel, and a huge-page promotion moves a
// region's translation from the 4K TEA to the 2M TEA without changing the
// VMA-to-TEA mapping.
//
//	go run ./examples/hugepages
package main

import (
	"fmt"
	"log"

	"dmt/internal/cache"
	"dmt/internal/core"
	"dmt/internal/kernel"
	"dmt/internal/mem"
	"dmt/internal/phys"
	"dmt/internal/tea"
	"dmt/internal/tlb"
)

func main() {
	pa := phys.New(0, 1<<18)
	as, err := kernel.NewAddressSpace(pa, kernel.Config{THP: true, ASID: 1})
	if err != nil {
		log.Fatal(err)
	}
	mgr := tea.NewManager(as, tea.NewPhysBackend(pa), tea.DefaultConfig(true))
	as.SetHooks(mgr)

	heap, err := as.MMap(0x4000_0000, 64<<20, kernel.VMAHeap, "heap")
	if err != nil {
		log.Fatal(err)
	}

	// Populate with base pages first (THP off for a moment), then let
	// khugepaged-style promotion collapse the regions.
	if err := as.Populate(heap); err != nil { // THP on: faults install 2M pages
		log.Fatal(err)
	}
	fmt.Printf("THP-mapped regions: %d\n", as.THPMapped)

	hier, err := cache.NewHierarchy(cache.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	radix := core.NewRadixWalker(as.PT, hier, tlb.NewPWC(), as.ASID())
	dmt := core.NewDMTWalker(mgr, as.Pool, hier, radix)

	va := heap.Start + 0x2abcde
	out := dmt.Walk(va)
	fmt.Printf("\ntranslate va=%#x\n", uint64(va))
	fmt.Printf("  resolved as a %v page in %d sequential step (%d parallel TEA probes)\n",
		out.Size, out.SeqSteps, len(out.Refs))
	for _, r := range out.Refs {
		fmt.Printf("    probe of the %v-PTE TEA at %#x: %d cycles (%v)\n",
			mem.PageSize(r.Level-1), uint64(r.Addr), r.Cycles, r.Served)
	}
	if out.Size != mem.Size2M {
		log.Fatal("expected a 2M translation under THP")
	}

	// The register carries both TEAs; only the 2M one holds valid leaves
	// for THP-mapped regions.
	reg := mgr.Lookup(va)
	fmt.Printf("\nregister: base=%#x limit=%#x 4K-TEA=%v 2M-TEA=%v\n",
		uint64(reg.Base), uint64(reg.Limit), reg.Covered[mem.Size4K], reg.Covered[mem.Size2M])

	// Demote one region back to base pages: the mapping is untouched;
	// only the PTEs move between TEAs (§4.4).
	demoteBase := mem.AlignDown(va, mem.PageBytes2M)
	pte, _ := as.PT.LeafPTE(demoteBase)
	if err := as.PT.Unmap(demoteBase, mem.Size2M); err != nil {
		log.Fatal(err)
	}
	for off := mem.VAddr(0); off < mem.PageBytes2M; off += mem.PageBytes4K {
		frame, err := pa.AllocFrame(phys.KindMovable)
		if err != nil {
			log.Fatal(err)
		}
		if err := as.PT.Map(demoteBase+off, frame, mem.Size4K, mem.PTEWritable); err != nil {
			log.Fatal(err)
		}
	}
	_ = pte
	out = dmt.Walk(va)
	fmt.Printf("\nafter demotion: resolved as a %v page, still %d sequential step, fallback=%v\n",
		out.Size, out.SeqSteps, out.Fallback)
	if out.Size != mem.Size4K || out.Fallback {
		log.Fatal("demoted region should resolve from the 4K TEA without fallback")
	}
}
