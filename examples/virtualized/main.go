// Virtualized: stand up a hypervisor and a VM, run a guest process with
// paravirtualized DMT (gTEAs allocated machine-contiguously through the
// KVM_HC_ALLOC_TEA hypercall), and compare a pvDMT translation (2 memory
// references) against hardware-assisted nested paging (up to 24) and
// against DMT without paravirtualization (3).
//
//	go run ./examples/virtualized
package main

import (
	"fmt"
	"log"

	"dmt/internal/cache"
	"dmt/internal/kernel"
	"dmt/internal/mem"
	"dmt/internal/tea"
	"dmt/internal/virt"
)

func main() {
	hyp, err := virt.NewHypervisor(1<<18 /* 1 GiB machine memory */, cache.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	vm, err := hyp.NewVM(virt.VMConfig{
		Name:             "vm0",
		RAMBytes:         256 << 20,
		HostDMT:          true,     // host maintains hVMA-to-hTEA mappings
		PvTEAWindowBytes: 32 << 20, // guest-physical window for gTEAs
		ASID:             100,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A guest process whose TEA backend is the hypercall: every gTEA is
	// contiguous in *machine* physical memory (§3.1).
	guest, err := vm.NewGuestProcess(false, 1)
	if err != nil {
		log.Fatal(err)
	}
	gmgr := tea.NewManager(guest, virt.NewHypercallBackend(vm), tea.DefaultConfig(false))
	guest.SetHooks(gmgr)

	heap, err := guest.MMap(0x4000_0000, 96<<20, kernel.VMAHeap, "heap")
	if err != nil {
		log.Fatal(err)
	}
	if err := guest.Populate(heap); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gTEA table entries: %d (installed via %d hypercalls)\n",
		vm.GTEA.Len(), hyp.Hypercalls)

	// A second guest process using plain DMT (§3.1 without paravirt):
	// its gTEAs are contiguous in *guest* physical memory only, so a
	// translation takes three references instead of two.
	guest2, err := vm.NewGuestProcess(false, 2)
	if err != nil {
		log.Fatal(err)
	}
	gmgr2 := tea.NewManager(guest2, tea.NewPhysBackend(vm.GuestPhys), tea.DefaultConfig(false))
	guest2.SetHooks(gmgr2)
	heap2, err := guest2.MMap(0x4000_0000, 96<<20, kernel.VMAHeap, "heap")
	if err != nil {
		log.Fatal(err)
	}
	if err := guest2.Populate(heap2); err != nil {
		log.Fatal(err)
	}

	// Three translation designs.
	nested := virt.NewNestedWalker(guest.PT, vm.HostAS.PT, hyp.Hier, 1)
	nested.DisableMMUCaches() // show the architectural worst case
	nested2 := virt.NewNestedWalker(guest2.PT, vm.HostAS.PT, hyp.Hier, 2)
	dmtv := &virt.DMTVirtWalker{
		Guest: gmgr2, GuestPool: guest2.Pool,
		Host: vm.HostTEA, HostPool: vm.HostAS.Pool,
		Hier: hyp.Hier, Fallback: nested2,
	}
	pv := virt.NewPvDMTWalker(vm, gmgr, guest.Pool, hyp.Hier, nested)

	va := heap.Start + 0xabc123
	n := nested.Walk(va)
	d := dmtv.Walk(va)
	p := pv.Walk(va)
	fmt.Printf("\ntranslate gVA=%#x\n", uint64(va))
	fmt.Printf("  nested paging (no MMU caches): %2d refs -> PA %#x\n", n.SeqSteps, uint64(n.PA))
	fmt.Printf("  DMT (3.1, no paravirt)       : %2d refs (second process)\n", d.SeqSteps)
	fmt.Printf("  pvDMT                        : %2d refs -> PA %#x\n", p.SeqSteps, uint64(p.PA))
	if n.PA != p.PA || !d.OK {
		log.Fatal("designs disagree!")
	}

	// Isolation (§4.5.2): a forged gTEA access faults in the host.
	if _, err := vm.GTEA.Resolve(9999, mem.PAddr(0xdead000)); err == nil {
		log.Fatal("isolation violation went undetected")
	} else {
		fmt.Printf("\nforged gTEA ID rejected: %v\n", err)
	}
}
