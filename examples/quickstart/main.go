// Quickstart: build a native machine, map a heap with DMT's TEA management,
// and watch the DMT fetcher translate with a single memory reference where
// the x86 radix walker needs four.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dmt/internal/cache"
	"dmt/internal/core"
	"dmt/internal/kernel"
	"dmt/internal/phys"
	"dmt/internal/tea"
	"dmt/internal/tlb"
)

func main() {
	// 1 GiB of simulated physical memory managed by a buddy allocator.
	pa := phys.New(0, 1<<18)

	// A process address space. Installing the TEA manager *before*
	// creating VMAs lets it allocate a Translation Entry Area for each
	// mapping and place last-level page-table nodes inside it.
	as, err := kernel.NewAddressSpace(pa, kernel.Config{ASID: 1})
	if err != nil {
		log.Fatal(err)
	}
	mgr := tea.NewManager(as, tea.NewPhysBackend(pa), tea.DefaultConfig(false))
	as.SetHooks(mgr)

	// A 256 MiB heap, fully populated (data-intensive workloads allocate
	// at initialization time — §7 of the paper).
	heap, err := as.MMap(0x4000_0000, 256<<20, kernel.VMAHeap, "heap")
	if err != nil {
		log.Fatal(err)
	}
	if err := as.Populate(heap); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("heap: %v\n", heap)
	fmt.Printf("TEA manager: %v\n", mgr)

	// The memory hierarchy (Table 3 configuration) and the two walkers:
	// the legacy x86 radix walker and the DMT fetcher.
	hier, err := cache.NewHierarchy(cache.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	radix := core.NewRadixWalker(as.PT, hier, tlb.NewPWC(), as.ASID())
	dmt := core.NewDMTWalker(mgr, as.Pool, hier, radix)

	va := heap.Start + 0x1234_567
	d := dmt.Walk(va)
	x := radix.Walk(va)
	fmt.Printf("\ntranslate va=%#x\n", uint64(va))
	fmt.Printf("  DMT fetcher : PA=%#x  %d memory reference(s), %d cycles\n",
		uint64(d.PA), d.SeqSteps, d.Cycles)
	fmt.Printf("  x86 walker  : PA=%#x  %d memory reference(s), %d cycles\n",
		uint64(x.PA), x.SeqSteps, x.Cycles)
	if d.PA != x.PA {
		log.Fatal("walkers disagree!")
	}

	// Behind an MMU (TLB front-end), repeated translations are free.
	dtlb, err := tlb.New(tlb.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	mmu := core.NewMMU(dtlb, dmt, as.ASID())
	if _, cycles, ok := mmu.Translate(va); !ok || cycles == 0 {
		log.Fatal("first translation should walk")
	}
	_, cycles, _ := mmu.Translate(va)
	fmt.Printf("  second translation via TLB: %d extra cycles\n", cycles)
	fmt.Printf("\nDMT register coverage: %.1f%%\n", dmt.Coverage()*100)
}
