// Fragmentation: exercise DMT's graceful degradation when contiguous
// physical memory is scarce (§4.2.2, §6.3, §7) — TEA allocation failures
// trigger VMA-to-TEA mapping splits, memory compaction restores
// contiguity, and the legacy walker covers whatever falls through.
//
//	go run ./examples/fragmentation
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dmt/internal/cache"
	"dmt/internal/core"
	"dmt/internal/kernel"
	"dmt/internal/mem"
	"dmt/internal/phys"
	"dmt/internal/tea"
	"dmt/internal/tlb"
)

func main() {
	pa := phys.New(0, 1<<17) // 512 MiB
	// Shatter free memory to the §6.3 methodology's index 0.99.
	pa.Fragment(rand.New(rand.NewSource(7)), 4, 0.99)
	fmt.Printf("fragmentation index (order 4): %.2f, free: %d MiB\n",
		pa.FragmentationIndex(4), pa.FreeFrames()*4/1024)

	as, err := kernel.NewAddressSpace(pa, kernel.Config{ASID: 1})
	if err != nil {
		log.Fatal(err)
	}
	mgr := tea.NewManager(as, tea.NewPhysBackend(pa), tea.DefaultConfig(false))
	as.SetHooks(mgr)

	// A 128 MiB heap needs a 64-frame TEA; with only isolated single
	// frames free, allocation must repeatedly split (§4.2.2).
	heap, err := as.MMap(0x4000_0000, 128<<20, kernel.VMAHeap, "heap")
	if err != nil {
		log.Fatal(err)
	}
	if err := as.Populate(heap); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after mmap under fragmentation: %d mappings, %d splits, %d contig failures\n",
		len(mgr.Mappings()), mgr.Stats.Splits, mgr.Stats.AllocFailures)

	hier, err := cache.NewHierarchy(cache.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	radix := core.NewRadixWalker(as.PT, hier, tlb.NewPWC(), as.ASID())
	dmt := core.NewDMTWalker(mgr, as.Pool, hier, radix)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		va := heap.Start + mem.VAddr(rng.Int63n(int64(heap.Size()))&^7)
		if out := dmt.Walk(va); !out.OK {
			log.Fatalf("walk failed at %#x", uint64(va))
		}
	}
	fmt.Printf("register coverage under fragmentation: %.1f%% (rest served by the x86 walker)\n",
		dmt.Coverage()*100)

	// Free the background pins (processes exiting), compact, and rebuild:
	// contiguity returns and so does full coverage.
	if err := as.MUnmap(heap); err != nil {
		log.Fatal(err)
	}
	freeAllUnmovable(pa)
	moved := pa.Compact()
	fmt.Printf("\nafter freeing background load + compaction (%d frames migrated): index %.2f\n",
		moved, pa.FragmentationIndex(4))

	heap, err = as.MMap(0x4000_0000, 128<<20, kernel.VMAHeap, "heap")
	if err != nil {
		log.Fatal(err)
	}
	if err := as.Populate(heap); err != nil {
		log.Fatal(err)
	}
	dmt2 := core.NewDMTWalker(mgr, as.Pool, hier, radix)
	for i := 0; i < 20000; i++ {
		va := heap.Start + mem.VAddr(rng.Int63n(int64(heap.Size()))&^7)
		dmt2.Walk(va)
	}
	fmt.Printf("mappings now: %d; register coverage: %.1f%%\n",
		len(mgr.Mappings()), dmt2.Coverage()*100)
}

// freeAllUnmovable releases the Fragment() pins, emulating the background
// load exiting.
func freeAllUnmovable(pa *phys.Allocator) {
	for f := 0; f < pa.TotalFrames(); f++ {
		addr := pa.Base() + mem.PAddr(f<<mem.PageShift4K)
		if pa.FrameKind(addr) == phys.KindUnmovable {
			pa.FreeFrame(addr)
		}
	}
}
