// Nestedvirt: build the full L2-on-L1-on-L0 stack of §2.1.3 / §3.2, back an
// L2 guest process with cascaded pvDMT TEAs, and compare the baseline
// (shadow-compressed nested paging, Figure 3) against pvDMT's three direct
// fetches (Figure 9) — the configuration where hardware-assisted
// translation is otherwise untenable.
//
//	go run ./examples/nestedvirt
package main

import (
	"fmt"
	"log"

	"dmt/internal/cache"
	"dmt/internal/kernel"
	"dmt/internal/tea"
	"dmt/internal/virt"
)

func main() {
	hyp, err := virt.NewHypervisor(1<<18 /* 1 GiB */, cache.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// L1: a VM that itself acts as a hypervisor.
	l1, err := hyp.NewVM(virt.VMConfig{
		Name: "L1", RAMBytes: 384 << 20, HostDMT: true,
		PvTEAWindowBytes: 96 << 20, ASID: 100,
	})
	if err != nil {
		log.Fatal(err)
	}
	// L2: a VM inside L1. Its host structures live in L1's physical
	// space; its pv-TEAs cascade down to machine memory.
	l2, err := hyp.NewNestedVM(l1, virt.VMConfig{
		Name: "L2", RAMBytes: 128 << 20, HostDMT: true,
		PvTEAWindowBytes: 48 << 20, ASID: 101,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("virtualization depth of L2: %d\n", l2.Depth())

	guest, err := l2.NewGuestProcess(false, 1)
	if err != nil {
		log.Fatal(err)
	}
	gmgr := tea.NewManager(guest, virt.NewHypercallBackend(l2), tea.DefaultConfig(false))
	guest.SetHooks(gmgr)
	heap, err := guest.MMap(0x4000_0000, 48<<20, kernel.VMAHeap, "heap")
	if err != nil {
		log.Fatal(err)
	}
	if err := guest.Populate(heap); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hypercalls issued (incl. L2→L1→L0 cascades): %d\n", hyp.Hypercalls)

	// Baseline: the L0 hypervisor compresses L1PT+L0PT into a shadow
	// table (L2PA→L0PA) and the hardware does a 2D walk across it.
	spt, err := virt.BuildNestedShadow(l2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shadow syncs to build the compressed sPT: %d (each a VM exit at runtime)\n", hyp.ShadowSyncs)
	baseline := virt.NewNestedWalker(guest.PT, spt, hyp.Hier, 1)
	baseline.DisableMMUCaches()

	// pvDMT: L2VA -> L2PA -> L1PA -> L0PA, one register-file fetch each.
	pv := virt.NewPvDMTNestedWalker(l2, gmgr, guest.Pool, hyp.Hier, baseline)

	va := heap.Start + 0x123456
	b := baseline.Walk(va)
	p := pv.Walk(va)
	fmt.Printf("\ntranslate L2 VA=%#x\n", uint64(va))
	fmt.Printf("  baseline 2D over sPT (no MMU caches): %2d refs -> L0 PA %#x\n", b.SeqSteps, uint64(b.PA))
	fmt.Printf("  nested pvDMT                        : %2d refs -> L0 PA %#x\n", p.SeqSteps, uint64(p.PA))
	for _, r := range p.Refs {
		fmt.Printf("    fetch at %-3s level %d: %3d cycles\n", r.Dim, r.Level, r.Cycles)
	}
	if b.PA != p.PA {
		log.Fatal("designs disagree!")
	}
}
