// Package dmt is a from-scratch Go reproduction of "Direct Memory
// Translation for Virtualized Clouds" (Zhang et al., ASPLOS 2024): the
// DMT/pvDMT hardware-software co-design, every substrate it depends on
// (buddy allocator, radix page tables, TLB/PWC/cache hierarchy, KVM-style
// virtualization with shadow paging and nested virtualization), the four
// comparison baselines (ECPT, FPT, Agile Paging, ASAP), synthetic
// reproductions of the seven evaluation workloads, and a benchmark harness
// that regenerates every table and figure of the paper's evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The root-level benchmarks (bench_test.go) regenerate each experiment:
//
//	go test -bench=. -benchmem .
package dmt
